package lint

import (
	"go/ast"
	"go/types"
)

// BlockRes is the static twin of PR 8's bounded-residency contract: a
// *DecodedBlock handed out by graph.ReadBlock or a BlockCache lookup is valid
// only until the clock hand evicts it, so no alias of its memory may outlive
// the superstep scope that fetched it. FlashGraph enforces the same page-cache
// ownership discipline at runtime; here a retained block is a diagnostic, not
// a heisenbug over recycled memory.
//
// Tainted values are (a) anything of type DecodedBlock (so the taint crosses
// function boundaries by construction — returning the block itself is fine,
// callers re-taint it), and (b) slices pulled out of one (DecodedBlock.Adj
// aliases the decoded adjacency arena), tracked through local aliases and
// module callees whose summaries flow a parameter to a return.
//
// Violations are the sinks that outlive the scope: stores to fields, globals,
// maps, or slices; channel sends; go/defer captures; returning an adjacency
// alias; and passing tainted memory to a module function whose summary says
// it retains its argument. The cache's own bookkeeping is the sanctioned
// owner and is marked //flash:blockowner.
var BlockRes = &Analyzer{
	Name: "blockres",
	Doc:  "decoded block memory may not outlive its superstep scope (eviction recycles it)",
	Run:  runBlockRes,
}

func runBlockRes(p *Pass) error {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f := p.Mod.FuncOf(p.Info.Defs[fd.Name])
			if f == nil {
				continue
			}
			if f.HasFuncMarker("blockowner") {
				continue // cache internals: the sanctioned owner of block memory
			}
			checkBlockRes(p, f)
		}
	}
	return nil
}

func checkBlockRes(p *Pass, f *Func) {
	// Local fixpoint: identifiers aliasing decoded adjacency memory.
	tainted := map[types.Object]bool{}
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := p.Info.Uses[e]
			if obj == nil {
				obj = p.Info.Defs[e]
			}
			return tainted[obj]
		case *ast.SliceExpr:
			return taintedExpr(e.X)
		case *ast.CallExpr:
			// A slice-returning method on a block aliases the arena (Adj).
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && isBlockExpr(p.Info, sel.X) {
				if _, isSlice := typeOf(p.Info, e).(*types.Slice); isSlice {
					return true
				}
			}
			// A module callee may flow a tainted argument back out.
			if callee := p.Mod.CalleeOf(p.Info, e); callee != nil {
				for j, a := range e.Args {
					if flag(callee.Sum.FlowsToRet, paramIndex(callee, j, len(e.Args))) &&
						(taintedExpr(a) || isBlockExpr(p.Info, a)) {
						return true
					}
				}
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range asg.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(asg.Lhs) == len(asg.Rhs):
					rhs = asg.Rhs[i]
				case len(asg.Rhs) == 1:
					rhs = asg.Rhs[0]
				default:
					continue
				}
				if !taintedExpr(rhs) {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	escapes := func(e ast.Expr) bool { return taintedExpr(e) || isBlockExpr(p.Info, e) }

	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Lhs) == len(n.Rhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				if !escapes(rhs) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj := p.Info.Uses[l]; obj != nil && p.Info.Defs[l] == nil && !declaredIn(obj, f.Decl) {
						p.Reportf(n.Pos(), "decoded block memory stored in package state outlives its superstep scope; copy it out (eviction recycles the arena)")
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					p.Reportf(n.Pos(), "decoded block memory stored through %s outlives its superstep scope; copy it out or mark the owner //flash:blockowner", types.ExprString(lhs))
				}
			}
		case *ast.SendStmt:
			if escapes(n.Value) {
				p.Reportf(n.Pos(), "decoded block memory sent on a channel outlives its superstep scope; copy it out")
			}
		case *ast.GoStmt:
			reportBlockCapture(p, f, n.Call, tainted, "go")
		case *ast.DeferStmt:
			reportBlockCapture(p, f, n.Call, tainted, "defer")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				// Returning the *DecodedBlock itself is fine — the taint is
				// type-carried and re-attaches at every caller. Returning an
				// adjacency slice hides the provenance, so it escapes.
				if taintedExpr(res) && !isBlockExpr(p.Info, res) {
					p.Reportf(n.Pos(), "returning an alias of decoded block adjacency; the arena is recycled on eviction — copy it or return the *DecodedBlock")
				}
			}
		case *ast.CallExpr:
			callee := p.Mod.CalleeOf(p.Info, n)
			if callee == nil || callee.HasFuncMarker("blockowner") {
				return true
			}
			for j, a := range n.Args {
				if flag(callee.Sum.RetainsParam, paramIndex(callee, j, len(n.Args))) && escapes(a) {
					p.Reportf(n.Pos(), "decoded block memory passed to %s, which retains its argument past the call", callee.Name())
				}
			}
		}
		return true
	})
}

// reportBlockCapture flags go/defer calls whose arguments or closure captures
// alias decoded block memory.
func reportBlockCapture(p *Pass, f *Func, call *ast.CallExpr, tainted map[types.Object]bool, kind string) {
	offends := false
	for _, a := range call.Args {
		if isBlockExpr(p.Info, a) {
			offends = true
		}
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && tainted[p.Info.Uses[id]] {
			offends = true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok && !offends {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.Info.Uses[id]; obj != nil && (tainted[obj] || isBlockObj(obj)) && declaredIn(obj, f.Decl) {
				offends = true
			}
			return true
		})
	}
	if offends {
		p.Reportf(call.Pos(), "decoded block memory captured by %s outlives its superstep scope; copy what the %s needs", kind, kind)
	}
}

// isBlockExpr reports whether e's static type is (a pointer to) a named type
// called DecodedBlock — matched by name, like commerr's receiver table, so
// fixtures can model the contract without importing flash/graph.
func isBlockExpr(info *types.Info, e ast.Expr) bool {
	t := typeOfExpr(info, e)
	if t == nil {
		return false
	}
	return isBlockTypeNamed(t)
}

func isBlockObj(obj types.Object) bool {
	return obj != nil && isBlockTypeNamed(obj.Type())
}

func isBlockTypeNamed(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "DecodedBlock"
}
