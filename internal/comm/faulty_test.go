package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFaultyDelayReorderDeliversAll(t *testing.T) {
	// With DelayProb 1 every cross-worker frame is held to EndRound and
	// shuffled; the receiver must still see the full round.
	tr := NewFaulty(NewMem(2), FaultPlan{Seed: 7, DelayProb: 1, Reorder: true})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := tr.Send(w, 1-w, []byte{byte(i)}); err != nil {
					t.Errorf("send: %v", err)
				}
			}
			if err := tr.EndRound(w); err != nil {
				t.Errorf("endround: %v", err)
			}
			seen := map[byte]bool{}
			if err := tr.Drain(w, func(from int, data []byte) {
				seen[data[0]] = true
			}); err != nil {
				t.Errorf("drain: %v", err)
			}
			if len(seen) != 5 {
				t.Errorf("worker %d: got %d distinct frames, want 5", w, len(seen))
			}
		}()
	}
	wg.Wait()
	if c := tr.Counts(); c.Delays != 10 {
		t.Fatalf("delays=%d want 10", c.Delays)
	}
}

func TestFaultySendFailIsTransient(t *testing.T) {
	tr := NewFaulty(NewMem(2), FaultPlan{Seed: 1, SendFailProb: 1, MaxSendFails: 2})
	var failed int
	for {
		err := tr.Send(0, 1, []byte("x"))
		if err == nil {
			break
		}
		if !IsTransient(err) {
			t.Fatalf("injected send failure not transient: %v", err)
		}
		failed++
	}
	if failed != 2 {
		t.Fatalf("failed %d times, want 2 (MaxSendFails)", failed)
	}
}

func TestFaultyDropIsOneShotAcrossReset(t *testing.T) {
	tr := NewFaulty(NewMem(2), FaultPlan{Drops: []ConnDrop{{From: 0, To: 1, Round: 0, Count: 2}}})
	for i := 0; i < 2; i++ {
		err := tr.Send(0, 1, []byte("x"))
		if !errors.Is(err, ErrConnDropped) || !IsTransient(err) {
			t.Fatalf("drop %d: err=%v", i, err)
		}
	}
	if err := tr.Send(0, 1, []byte("x")); err != nil {
		t.Fatalf("send after drop budget: %v", err)
	}
	// A recovery replay (Reset) must not re-arm consumed drops.
	tr.Reset()
	if err := tr.Send(0, 1, []byte("x")); err != nil {
		t.Fatalf("send after reset: %v", err)
	}
	if c := tr.Counts(); c.Drops != 2 {
		t.Fatalf("drops=%d want 2", c.Drops)
	}
}

func TestFaultyStallTriggersDrainTimeout(t *testing.T) {
	tr := NewFaulty(NewMem(2), FaultPlan{Stalls: []WorkerStall{{Worker: 0, Round: 0, Delay: 300 * time.Millisecond}}})
	tr.SetDrainTimeout(30 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		// Worker 0 stalls inside EndRound; its marker arrives late.
		if err := tr.EndRound(0); err != nil {
			done <- err
			return
		}
		done <- tr.Drain(0, func(int, []byte) {})
	}()
	if err := tr.EndRound(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Drain(1, func(int, []byte) {}); !errors.Is(err, ErrPeerStalled) {
		t.Fatalf("drain during stall: err=%v, want ErrPeerStalled", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("stalled worker: %v", err)
	}
	if c := tr.Counts(); c.Stalls != 1 {
		t.Fatalf("stalls=%d want 1", c.Stalls)
	}
}

func TestFaultyCrashIsNotTransient(t *testing.T) {
	tr := NewFaulty(NewMem(2), FaultPlan{Crashes: []WorkerCrash{{Worker: 0, Round: 0}}})
	err := tr.EndRound(0)
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Worker != 0 {
		t.Fatalf("err=%v, want CrashError{Worker: 0}", err)
	}
	if IsTransient(err) {
		t.Fatal("crash must not be transient (it needs checkpoint recovery, not a retry)")
	}
	// One-shot: the next round passes.
	if err := tr.EndRound(0); err != nil {
		t.Fatalf("round after crash: %v", err)
	}
}

func TestFaultyDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) FaultCounts {
		tr := NewFaulty(NewMem(2), FaultPlan{Seed: seed, SendFailProb: 0.3, DelayProb: 0.3})
		for r := 0; r < 10; r++ {
			for i := 0; i < 20; i++ {
				tr.Send(0, 1, []byte(fmt.Sprintf("%d", i)))
				tr.Send(1, 0, []byte(fmt.Sprintf("%d", i)))
			}
			tr.EndRound(0)
			tr.EndRound(1)
			tr.Drain(0, func(int, []byte) {})
			tr.Drain(1, func(int, []byte) {})
		}
		return tr.Counts()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.SendFails == 0 || a.Delays == 0 {
		t.Fatalf("seed 42 injected nothing: %+v", a)
	}
}

func TestFaultyExchangeStaysCorrect(t *testing.T) {
	// A full multi-round exchange under delays+reordering must still satisfy
	// the transport contract checked by runRounds.
	tr := NewFaulty(NewMem(3), FaultPlan{Seed: 3, DelayProb: 0.5, Reorder: true})
	runRounds(t, tr, 3, 4)
}
