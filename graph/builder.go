package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. The zero value
// is not usable; call NewBuilder.
//
// Building performs: optional symmetrization (undirected mode), per-vertex
// neighbor sorting, and optional duplicate/self-loop elimination. These
// normalizations are what the algorithms in this repository assume.
type Builder struct {
	n          int
	directed   bool
	weighted   bool
	dedup      bool
	keepLoops  bool
	name       string
	srcs, dsts []VID
	ws         []float32
}

// NewBuilder returns a Builder for a graph with n vertices. By default the
// graph is undirected, unweighted, deduplicated, and self-loop-free.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, dedup: true}
}

// Directed sets whether edges are directed. For undirected graphs every
// added edge is stored in both directions.
func (b *Builder) Directed(d bool) *Builder { b.directed = d; return b }

// Weighted enables edge weights; AddEdgeW must then be used (AddEdge adds
// weight 1).
func (b *Builder) Weighted(w bool) *Builder { b.weighted = w; return b }

// Dedup sets whether parallel edges are merged (keeping the smallest weight).
func (b *Builder) Dedup(d bool) *Builder { b.dedup = d; return b }

// KeepSelfLoops retains self-loop edges (dropped by default).
func (b *Builder) KeepSelfLoops(k bool) *Builder { b.keepLoops = k; return b }

// Name attaches a dataset name carried by the built Graph.
func (b *Builder) Name(s string) *Builder { b.name = s; return b }

// AddEdge records the edge u->v (and v->u when undirected) with weight 1.
func (b *Builder) AddEdge(u, v VID) *Builder { return b.AddEdgeW(u, v, 1) }

// AddEdgeW records the edge u->v with weight w.
func (b *Builder) AddEdgeW(u, v VID, w float32) *Builder {
	if int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, b.n))
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
	if b.weighted {
		b.ws = append(b.ws, w)
	}
	return b
}

type edgeRec struct {
	u, v VID
	w    float32
}

// Build finalizes the graph. The builder may not be reused afterwards.
func (b *Builder) Build() *Graph {
	edges := make([]edgeRec, 0, len(b.srcs)*2)
	for i := range b.srcs {
		u, v := b.srcs[i], b.dsts[i]
		if u == v && !b.keepLoops {
			continue
		}
		var w float32 = 1
		if b.weighted {
			w = b.ws[i]
		}
		edges = append(edges, edgeRec{u, v, w})
		if !b.directed && u != v {
			edges = append(edges, edgeRec{v, u, w})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		if edges[i].v != edges[j].v {
			return edges[i].v < edges[j].v
		}
		return edges[i].w < edges[j].w
	})
	if b.dedup {
		out := edges[:0]
		for _, e := range edges {
			if len(out) > 0 && out[len(out)-1].u == e.u && out[len(out)-1].v == e.v {
				continue // keep the smallest weight (sorted above)
			}
			out = append(out, e)
		}
		edges = out
	}

	g := &Graph{n: b.n, m: len(edges), directed: b.directed, name: b.name}
	g.outOff = make([]int64, b.n+1)
	g.inOff = make([]int64, b.n+1)
	g.outAdj = make([]VID, len(edges))
	g.inAdj = make([]VID, len(edges))
	if b.weighted {
		g.outW = make([]float32, len(edges))
		g.inW = make([]float32, len(edges))
	}

	for _, e := range edges {
		g.outOff[e.u+1]++
		g.inOff[e.v+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	// Fill out-adjacency in sorted order directly.
	pos := make([]int64, b.n)
	copy(pos, g.outOff[:b.n])
	for _, e := range edges {
		p := pos[e.u]
		g.outAdj[p] = e.v
		if b.weighted {
			g.outW[p] = e.w
		}
		pos[e.u]++
	}
	// Fill in-adjacency; since edges are sorted by (u,v), filling by v keeps
	// each in-list sorted by source.
	copy(pos, g.inOff[:b.n])
	for _, e := range edges {
		p := pos[e.v]
		g.inAdj[p] = e.u
		if b.weighted {
			g.inW[p] = e.w
		}
		pos[e.v]++
	}
	return g
}

// FromEdges is a convenience constructor for tests and examples: it builds an
// unweighted graph from (u,v) pairs.
func FromEdges(n int, directed bool, edges [][2]VID) *Graph {
	b := NewBuilder(n).Directed(directed)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Reverse returns a new graph with every stored directed edge flipped. For
// undirected graphs (which store both directions) the result is structurally
// identical to the input.
func Reverse(g *Graph) *Graph {
	b := NewBuilder(g.n).Directed(true).Weighted(g.Weighted()).Name(g.name + "-rev")
	g.Edges(func(u, v VID, w float32) bool {
		b.AddEdgeW(v, u, w)
		return true
	})
	rg := b.Build()
	rg.directed = g.directed
	return rg
}
