package core

import "flash/metrics"

// StepOpts tune a single primitive invocation.
type StepOpts struct {
	// NoSync marks the step's updates as master-local (not critical per the
	// Table II analysis), skipping mirror synchronization.
	NoSync bool
	// Mode overrides the engine mode for this EdgeMap (Auto = inherit).
	Mode Mode
}

// VertexMap applies the map function M to every vertex of U passing F and
// returns the subset of vertices that passed F (§III-A). F and M receive a
// view of the vertex whose Val points at the master's current state; M may
// mutate through Val and must return the vertex's new value. A nil F is the
// paper's CTRUE; a nil M leaves values unchanged (filter semantics).
//
// Each VertexMap is one superstep: local computation followed by mirror
// synchronization of updated masters (unless opts.NoSync).
//
//flash:hotpath
func (e *Engine[V]) VertexMap(U *Subset, F func(Vtx[V]) bool, M func(Vtx[V]) V, opts StepOpts) *Subset {
	e.checkSubset(U)
	return e.execStep(U.Size(), func(out *Subset) error {
		scope := e.scopeFor(true, opts.NoSync || M == nil)
		return e.parallelWorkers(func(w *worker[V]) error {
			membership := U.local[w.id]
			outBits := out.local[w.id]
			updated := w.nextSet
			updated.Reset()
			w.timeBlock(metrics.Compute, func() {
				w.forEachMember(membership, U.Size(), func(l int) {
					gid := e.place.GlobalID(w.id, l)
					v := w.vtxMaster(gid, l)
					if F != nil && !F(v) {
						return
					}
					if M != nil {
						w.cur[l] = M(v)
						updated.Set(l)
					}
					outBits.Set(l)
				})
			})
			if scope != scopeNone {
				return w.syncMasters(updated, scope)
			}
			return nil
		})
	})
}

// VertexMapC is VertexMap with context-passing callbacks that may read
// arbitrary vertices through c.Get (FLASHWARE's get; exact only under
// FullMirrors). Updates are buffered in next states and published after the
// local scan, so concurrent reads always observe the superstep's initial
// values.
//
//flash:hotpath
func (e *Engine[V]) VertexMapC(U *Subset, F func(c *Ctx[V], v Vtx[V]) bool, M func(c *Ctx[V], v Vtx[V]) V, opts StepOpts) *Subset {
	e.checkSubset(U)
	return e.execStep(U.Size(), func(out *Subset) error {
		scope := e.scopeFor(true, opts.NoSync || M == nil)
		return e.parallelWorkers(func(w *worker[V]) error {
			membership := U.local[w.id]
			outBits := out.local[w.id]
			updated := w.nextSet
			updated.Reset()
			w.timeBlock(metrics.Compute, func() {
				w.forEachMember(membership, U.Size(), func(l int) {
					gid := e.place.GlobalID(w.id, l)
					v := w.vtxMaster(gid, l)
					if F != nil && !F(&w.ctx, v) {
						return
					}
					if M != nil {
						w.next[l] = M(&w.ctx, v)
						updated.Set(l)
					}
					outBits.Set(l)
				})
				w.publishNext(updated)
			})
			if scope != scopeNone {
				return w.syncMasters(updated, scope)
			}
			return nil
		})
	})
}
