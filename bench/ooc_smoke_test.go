package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOOCCacheSmoke is the CI gate for the out-of-core tier: run the XXL
// algorithms on a generated FLASHBLK file with a deliberately tiny cache
// budget (2% of the edge bytes), emit the suite JSON, and assert — on the
// re-read document, so the committed artifact schema is what is checked —
// that the budget forced evictions and the cache counters are populated.
// MeasureOOC itself verifies the block-backend results against the
// in-memory CSR, so a passing run also proves XXL BFS and CC complete
// out-of-core with identical output.
func TestOOCCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("XXL tier skipped in -short mode")
	}
	g := GenXXL()
	ooc, err := MeasureOOC(g, int64(g.NumEdges())*4/50, 1)
	if err != nil {
		t.Fatalf("MeasureOOC: %v", err)
	}

	path := filepath.Join(t.TempDir(), "BENCH_ooc.json")
	if err := WritePerfJSON(path, &PerfSuite{
		Schema:      "flash-bench/v2",
		GraphXXL:    "rmat-65536x36-seed101 (XXL tier, out-of-core)",
		VerticesXXL: g.NumVertices(),
		EdgesXXL:    g.NumEdges(),
		Reps:        1,
		Ooc:         ooc,
	}); err != nil {
		t.Fatalf("WritePerfJSON: %v", err)
	}
	got, err := ReadPerfJSON(path)
	if err != nil {
		t.Fatalf("ReadPerfJSON: %v", err)
	}
	if got.EdgesXXL < 10*362422 {
		t.Fatalf("XXL tier has %d edges, want >= 10x the XL tier", got.EdgesXXL)
	}
	for _, name := range []string{"bfs-xxl", "cc-xxl"} {
		o, ok := got.Ooc[name]
		if !ok {
			t.Fatalf("emitted JSON has no ooc entry %q", name)
		}
		if o.Evictions == 0 {
			t.Errorf("%s: tiny budget (%d B of %d edge B) forced no evictions", name, o.CacheBudgetBytes, o.EdgeBytes)
		}
		if o.CacheHitRate <= 0 || o.CacheHitRate > 1 {
			t.Errorf("%s: cache hit rate %v out of (0,1]", name, o.CacheHitRate)
		}
		if o.DenseSteps == 0 || o.SparseSteps == 0 {
			t.Errorf("%s: bimodal step counters empty: dense=%d sparse=%d", name, o.DenseSteps, o.SparseSteps)
		}
		if o.BytesPerDenseStep == 0 || o.BytesPerSparseStep == 0 {
			t.Errorf("%s: per-step read volume empty: dense=%d sparse=%d", name, o.BytesPerDenseStep, o.BytesPerSparseStep)
		}
		if o.BytesPerSparseStep >= o.BytesPerDenseStep {
			t.Errorf("%s: sparse supersteps read %d B/step, dense %d B/step — residency planning should read less when the frontier is small",
				name, o.BytesPerSparseStep, o.BytesPerDenseStep)
		}
		if o.ResidentBytes >= o.InMemBytes {
			t.Errorf("%s: ooc resident %d B not below in-memory %d B", name, o.ResidentBytes, o.InMemBytes)
		}
	}
	if data, err := os.ReadFile(path); err == nil && testing.Verbose() {
		t.Logf("emitted ooc section:\n%s", data)
	}
}
