package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flash/algo"
	"flash/internal/serve"
)

// startFlashd builds the daemon binary, starts it on a free port with the
// given extra flags, and returns its base URL plus a stop function that
// sends SIGTERM and waits for a clean exit.
func startFlashd(t *testing.T, extra ...string) (string, func() error) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "flashd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	// The daemon announces its bound address on stdout.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "flashd listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address (scan err: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	stop := func() error {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			return err
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			return fmt.Errorf("daemon did not exit within 60s of SIGTERM")
		}
	}
	return "http://" + addr, stop
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("unmarshal %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

// TestFlashdEndToEnd drives the daemon binary over real HTTP: preload a
// graph via flag, load a second via the API, run jobs on both, compare a
// BFS result against the in-process algo package, read metrics, evict, and
// shut down cleanly with SIGTERM.
func TestFlashdEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}

	preload := filepath.Join(t.TempDir(), "graphs.json")
	specs := []serve.GraphSpec{{Name: "boot", Gen: "er", N: 200, M: 800, Seed: 5}}
	data, _ := json.Marshal(specs)
	if err := os.WriteFile(preload, data, 0o644); err != nil {
		t.Fatal(err)
	}

	base, stop := startFlashd(t, "-preload", preload, "-max-concurrent", "2")

	// The preloaded graph is in the catalog.
	var infos []serve.GraphInfo
	getJSON(t, base+"/v1/graphs", &infos)
	if len(infos) != 1 || infos[0].Name != "boot" {
		t.Fatalf("catalog after preload = %+v", infos)
	}
	if infos[0].GraphBytes == 0 {
		t.Fatal("preloaded graph reports zero GraphBytes")
	}

	// Load a second graph over the API.
	resp, body := postJSON(t, base+"/v1/graphs",
		serve.GraphSpec{Name: "g", Gen: "rmat", N: 512, M: 2048, Seed: 11})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load graph: %d %s", resp.StatusCode, body)
	}

	// Run BFS through the service and compare with the direct library call.
	resp, body = postJSON(t, base+"/v1/jobs", map[string]any{
		"graph": "g", "algo": "bfs", "params": map[string]any{"root": 0},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil || accepted.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}

	var status struct {
		State  string `json:"state"`
		Result *struct {
			Values     json.RawMessage `json:"values"`
			Supersteps int             `json:"supersteps"`
			StateBytes uint64          `json:"state_bytes"`
			Workers    int             `json:"workers"`
		} `json:"result"`
	}
	getJSON(t, base+"/v1/jobs/"+accepted.ID+"?wait=60s", &status)
	if status.State != "done" || status.Result == nil {
		t.Fatalf("job state %q, result %v", status.State, status.Result)
	}
	if status.Result.StateBytes == 0 || status.Result.Workers == 0 {
		t.Fatalf("missing run accounting: %+v", status.Result)
	}

	g, err := serve.BuildGraph(serve.GraphSpec{Name: "g", Gen: "rmat", N: 512, M: 2048, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want, err := algo.BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(bytes.TrimSpace(status.Result.Values), wantJSON) {
		t.Fatalf("service BFS != direct BFS\nservice: %.120s\ndirect:  %.120s",
			status.Result.Values, wantJSON)
	}

	// A job naming a missing graph is a typed 404.
	resp, body = postJSON(t, base+"/v1/jobs", map[string]any{
		"graph": "nope", "algo": "cc",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: %d %s", resp.StatusCode, body)
	}
	var envelope struct {
		Code  string `json:"code"`
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != "unknown_graph" || envelope.Graph != "nope" {
		t.Fatalf("error envelope = %+v", envelope)
	}

	// Metrics reflect the work done.
	var snap serve.MetricsSnapshot
	getJSON(t, base+"/v1/metrics", &snap)
	if snap.Completed < 1 || snap.Graphs != 2 || snap.GraphBytes == 0 {
		t.Fatalf("metrics = %+v", snap)
	}
	if snap.Rejected["unknown_graph"] != 1 {
		t.Fatalf("rejected counters = %v", snap.Rejected)
	}

	// Evict and confirm new jobs on the evicted graph are rejected.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/graphs/g", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("evict: %d", dresp.StatusCode)
	}
	resp, body = postJSON(t, base+"/v1/jobs", map[string]any{"graph": "g", "algo": "cc"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("job on evicted graph: %d %s", resp.StatusCode, body)
	}

	if err := stop(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}
