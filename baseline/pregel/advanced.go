package pregel

import (
	"sort"

	"flash/graph"
)

// The advanced applications below are the ones the paper's Table VI takes
// Pregel+ as the baseline for: SCC, BCC and MSF. Each is a chain of
// sub-programs (the paper's "practical Pregel algorithms" composition) with
// driver-side glue, which is exactly the overhead FLASH removes.

// SCC labels strongly connected components with forward-backward coloring;
// the backward traversal messages in-neighbors (transpose edges).
func SCC(g *graph.Graph, cfg Config) ([]int32, error) {
	n := g.NumVertices()
	scc := make([]int32, n)
	fid := make([]int32, n)
	for i := range scc {
		scc[i] = none
	}
	for {
		// Sub-program 1: forward min-id coloring over unassigned vertices.
		type cv struct{ FID int32 }
		color := Program[cv, int32]{
			Init: func(id graph.VID, _ int) cv { return cv{FID: int32(id)} },
			Compute: func(ctx *Context[cv, int32], val *cv, msgs []int32) {
				if scc[ctx.Self()] != none {
					ctx.VoteToHalt()
					return
				}
				changed := ctx.Superstep() == 0
				for _, m := range msgs {
					if m < val.FID {
						val.FID = m
						changed = true
					}
				}
				if changed {
					for _, d := range ctx.OutNeighbors() {
						if scc[d] == none {
							ctx.Send(d, val.FID)
						}
					}
				}
				ctx.VoteToHalt()
			},
			Combine: func(a, b int32) int32 {
				if a < b {
					return a
				}
				return b
			},
		}
		cres, err := Run(g, color, cfg)
		if err != nil {
			return nil, err
		}
		anyLeft := false
		for i, x := range cres.Values {
			if scc[i] == none {
				fid[i] = x.FID
				anyLeft = true
			}
		}
		if !anyLeft {
			break
		}
		// Sub-program 2: roots claim their color backwards (via transpose).
		type bv struct{ SCC int32 }
		back := Program[bv, int32]{
			Init: func(id graph.VID, _ int) bv { return bv{SCC: scc[id]} },
			Compute: func(ctx *Context[bv, int32], val *bv, msgs []int32) {
				self := ctx.Self()
				if scc[self] != none {
					ctx.VoteToHalt()
					return
				}
				claim := false
				if ctx.Superstep() == 0 && fid[self] == int32(self) {
					val.SCC = int32(self)
					claim = true
				}
				for _, m := range msgs {
					if val.SCC == none && m == fid[self] {
						val.SCC = fid[self]
						claim = true
					}
				}
				if claim {
					for _, s := range ctx.InNeighbors() {
						if scc[s] == none {
							ctx.Send(s, val.SCC)
						}
					}
				}
				ctx.VoteToHalt()
			},
		}
		bres, err := Run(g, back, cfg)
		if err != nil {
			return nil, err
		}
		for i, x := range bres.Values {
			if scc[i] == none && x.SCC != none {
				scc[i] = x.SCC
			}
		}
	}
	return scc, nil
}

// BCCResult mirrors the FLASH algo package's labelling: each non-root
// vertex is labelled with the biconnected component of its BFS tree edge.
type BCCResult struct {
	Labels  []int32
	Parents []int32
}

// BCC chains CC, a multi-source BFS, and a parent-assignment sub-program,
// then merges fundamental cycles with a driver-side union-find.
func BCC(g *graph.Graph, cfg Config) (BCCResult, error) {
	n := g.NumVertices()
	// Sub-program 1: component roots (min id labels).
	labels, err := CC(g, cfg)
	if err != nil {
		return BCCResult{}, err
	}
	// Sub-program 2: multi-source BFS levels from roots.
	type lv struct{ Dis int32 }
	bfs := Program[lv, int32]{
		Init: func(id graph.VID, _ int) lv { return lv{Dis: none} },
		Compute: func(ctx *Context[lv, int32], val *lv, msgs []int32) {
			if ctx.Superstep() == 0 {
				if labels[ctx.Self()] == uint32(ctx.Self()) {
					val.Dis = 0
					ctx.SendToNeighbors(1)
				}
				ctx.VoteToHalt()
				return
			}
			if val.Dis == none && len(msgs) > 0 {
				val.Dis = msgs[0]
				ctx.SendToNeighbors(val.Dis + 1)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
	bres, err := Run(g, bfs, cfg)
	if err != nil {
		return BCCResult{}, err
	}
	dis := make([]int32, n)
	for i, x := range bres.Values {
		dis[i] = x.Dis
	}
	// Sub-program 3: parent assignment (any neighbor one level up).
	type pv struct{ P int32 }
	par := Program[pv, int32]{
		Init: func(id graph.VID, _ int) pv { return pv{P: none} },
		Compute: func(ctx *Context[pv, int32], val *pv, msgs []int32) {
			self := ctx.Self()
			switch ctx.Superstep() {
			case 0:
				for _, d := range ctx.OutNeighbors() {
					if dis[d] == dis[self]+1 {
						ctx.Send(d, int32(self))
					}
				}
			case 1:
				if val.P == none && len(msgs) > 0 {
					val.P = msgs[0]
				}
			}
			ctx.VoteToHalt()
		},
	}
	pres, err := Run(g, par, cfg)
	if err != nil {
		return BCCResult{}, err
	}
	parent := make([]int32, n)
	for i, x := range pres.Values {
		parent[i] = x.P
	}
	// Driver: merge fundamental cycles (same walk as the FLASH version).
	dsuParent := make([]int32, n)
	for i := range dsuParent {
		dsuParent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for dsuParent[x] != x {
			dsuParent[x] = dsuParent[dsuParent[x]]
			x = dsuParent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			dsuParent[ra] = rb
		}
	}
	g.Edges(func(a, b graph.VID, _ float32) bool {
		if a >= b || parent[a] == int32(b) || parent[b] == int32(a) {
			return true
		}
		anchor := int32(a)
		if dis[b] > dis[a] {
			anchor = int32(b)
		}
		x, y := int32(a), int32(b)
		for x != y {
			if dis[x] >= dis[y] {
				union(anchor, x)
				x = parent[x]
			} else {
				union(anchor, y)
				y = parent[y]
			}
		}
		return true
	})
	res := BCCResult{Labels: make([]int32, n), Parents: parent}
	for v := 0; v < n; v++ {
		if parent[v] == none {
			res.Labels[v] = -1
		} else {
			res.Labels[v] = find(int32(v))
		}
	}
	return res, nil
}

// MSFEdge is one selected forest edge.
type MSFEdge struct {
	U, V graph.VID
	W    float32
}

// MSF runs Borůvka rounds: every round a vertex program finds, per vertex,
// the minimum-weight edge leaving its current component (component labels
// live in a driver-side aggregator array, as Pregel+ uses aggregators), and
// the driver contracts the chosen edges. O(log n) full message rounds over
// all edges — the overhead Kruskal-in-FLASH avoids.
func MSF(g *graph.Graph, cfg Config) ([]MSFEdge, float64, error) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	var forest []MSFEdge
	var total float64
	for round := 0; round < 64; round++ {
		// Snapshot the component roots so the vertex program only reads.
		rootOf := make([]int32, n)
		for v := range rootOf {
			rootOf[v] = find(int32(v))
		}
		// Vertex program: local min cross-component edge per vertex.
		type mv struct{ Best cand }
		prog := Program[mv, int32]{
			Init: func(id graph.VID, _ int) mv { return mv{} },
			Compute: func(ctx *Context[mv, int32], val *mv, _ []int32) {
				self := ctx.Self()
				adj := ctx.OutNeighbors()
				ws := g.OutWeights(self)
				for i, d := range adj {
					if rootOf[self] == rootOf[d] {
						continue
					}
					var w float32 = 1
					if ws != nil {
						w = ws[i]
					}
					// Canonical orientation (min, max) gives every undirected
					// edge one key, so tie-breaking is consistent across
					// components and Borůvka cannot cycle.
					c := cand{U: self, V: d, W: w, Ok: true}
					if c.V < c.U {
						c.U, c.V = c.V, c.U
					}
					if !val.Best.Ok || c.less(val.Best) {
						val.Best = c
					}
				}
				ctx.VoteToHalt()
			},
		}
		res, err := Run(g, prog, cfg)
		if err != nil {
			return nil, 0, err
		}
		// Driver: per component, keep the global minimum candidate and
		// contract (ties broken deterministically by (W,U,V)).
		best := make(map[int32]cand)
		for vid, x := range res.Values {
			if !x.Best.Ok {
				continue
			}
			c := rootOf[vid]
			b, ok := best[c]
			if !ok || x.Best.less(b) {
				best[c] = x.Best
			}
		}
		if len(best) == 0 {
			break
		}
		progress := false
		keys := make([]int32, 0, len(best))
		for c := range best {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, c := range keys {
			e := best[c]
			ra, rb := find(int32(e.U)), find(int32(e.V))
			if ra != rb {
				comp[ra] = rb
				forest = append(forest, MSFEdge{U: e.U, V: e.V, W: e.W})
				total += float64(e.W)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return forest, total, nil
}

// cand is a candidate Borůvka edge.
type cand struct {
	U, V graph.VID
	W    float32
	Ok   bool
}

func (a cand) less(b cand) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}
