package cluster

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"flash/internal/comm"
)

// FuzzParseHello hammers the mesh handshake parser: any byte string must
// produce either a valid (worker, epoch) pair or a typed *HandshakeError —
// never a panic, and never a silent accept of corrupt bytes.
func FuzzParseHello(f *testing.F) {
	f.Add(comm.EncodeHello(0, 1))
	f.Add(comm.EncodeHello(3, 7))
	f.Add([]byte{})
	f.Add([]byte("FLSH"))
	f.Add([]byte("GET / HTTP/1.1\r\n\r"))                                       // a confused HTTP client, 17 bytes
	f.Add([]byte{'F', 'L', 'S', 'H', 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // bad version
	f.Fuzz(func(t *testing.T, data []byte) {
		worker, epoch, err := comm.ParseHello(data)
		if err != nil {
			var he *comm.HandshakeError
			if !errors.As(err, &he) {
				t.Fatalf("ParseHello error %T %v, want *HandshakeError", err, err)
			}
			return
		}
		// Accepted hellos must round-trip: re-encoding the extracted identity
		// reproduces the input exactly, so nothing was silently ignored.
		if got := comm.EncodeHello(worker, epoch); string(got) != string(data) {
			t.Fatalf("accepted hello does not round-trip: % x -> (w=%d e=%d) -> % x", data, worker, epoch, got)
		}
	})
}

// FuzzParseMessage hammers the coordinator control-plane parser with
// arbitrary lines. Anything but a well-formed, known-type message must come
// back as a *ProtocolError.
func FuzzParseMessage(f *testing.F) {
	f.Add([]byte(`{"type":"register","worker":1,"epoch":2,"addr":"127.0.0.1:9","latest_seq":3}`))
	f.Add([]byte(`{"type":"start","peers":["a","b"],"resume_seq":1}`))
	f.Add([]byte(`{"type":"result","result":[0,1,2]}`))
	f.Add([]byte(`{"type":"fail","error":"boom"}`))
	f.Add([]byte(`{"type":"chaos","fault":"partition"}`))
	f.Add([]byte(`{"type":"evil"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		m, err := ParseMessage(line)
		if err != nil {
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseMessage error %T %v, want *ProtocolError", err, err)
			}
			return
		}
		// A parsed message must survive the emit path (marshal + reparse).
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal accepted message: %v", err)
		}
		if _, err := ParseMessage(b); err != nil {
			t.Fatalf("re-parse of %s: %v", b, err)
		}
	})
}

// TestHostilePeerRejected drives the handshake rejection path live: a raw
// socket writing garbage, a well-formed hello from a stale epoch, and an
// out-of-range worker id are all disconnected — and the real mesh still
// forms afterwards, proving a hostile dialer cannot wedge cluster setup.
func TestHostilePeerRejected(t *testing.T) {
	eps := make([]*comm.TCP, 2)
	addrs := make([]string, 2)
	for i := range eps {
		ep, err := comm.ListenTCPCluster(comm.ClusterConfig{Workers: 2, Self: i, Listen: "127.0.0.1:0", Epoch: 5})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	hostile := [][]byte{
		[]byte("not a hello frame at all....."),
		comm.EncodeHello(1, 4),  // stale epoch (mesh is at 5)
		comm.EncodeHello(99, 5), // out-of-range worker for a 2-worker mesh
	}
	for _, frame := range hostile {
		conn, err := net.Dial("tcp", addrs[1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write hostile frame: %v", err)
		}
		// The listener must hang up on us, not sit on the socket.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err == nil {
			t.Fatalf("hostile peer got data back for frame % x", frame)
		}
		conn.Close()
	}
	// The legitimate mesh still connects and completes a round.
	errc := make(chan error, 2)
	for i := range eps {
		i := i
		go func() {
			if err := eps[i].ConnectPeers(addrs, 10*time.Second); err != nil {
				errc <- err
				return
			}
			if err := eps[i].Send(i, 1-i, []byte{byte(i)}); err != nil {
				errc <- err
				return
			}
			if err := eps[i].EndRound(i); err != nil {
				errc <- err
				return
			}
			errc <- eps[i].Drain(i, func(from int, data []byte) {})
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("mesh after hostile dials: %v", err)
		}
	}
}
