//go:build !flashdebug

package comm

// debugPoison is off in release builds: recycled frames keep their contents
// and the poison loop below compiles away.
const debugPoison = false

// PoisonByte is the fill value stamped over recycled frames under flashdebug.
const PoisonByte = 0xDD

func poisonFrame([]byte) {}
