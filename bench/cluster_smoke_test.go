package bench

import (
	"testing"
)

// TestClusterBenchSmoke runs the cross-process measurement end to end at the
// smallest fleet: it builds flashd, spawns two real worker processes, and
// checks the stat is coherent. It doubles as the CI guard that the `cluster`
// section of BENCH_flash.json can actually be produced.
func TestClusterBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns flashd worker processes")
	}
	cs, err := MeasureCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Workers != 2 {
		t.Fatalf("workers = %d, want 2", cs.Workers)
	}
	if cs.InProcNs <= 0 || cs.CrossNs <= 0 {
		t.Fatalf("non-positive timings: inproc %d, cross %d", cs.InProcNs, cs.CrossNs)
	}
	if cs.Restarts != 0 {
		t.Fatalf("fault-free benchmark run took %d restarts", cs.Restarts)
	}
}

// TestClusterBaselineSection pins the committed BENCH_flash.json: once the
// cluster section ships, it must not silently disappear from the baseline.
func TestClusterBaselineSection(t *testing.T) {
	base, err := ReadPerfJSON("../BENCH_flash.json")
	if err != nil {
		t.Skip("no committed BENCH_flash.json baseline")
	}
	if len(base.Cluster) == 0 {
		t.Fatal("committed BENCH_flash.json has no cluster section")
	}
	for k, cs := range base.Cluster {
		if cs.InProcNs <= 0 || cs.CrossNs <= 0 || cs.Workers < 2 {
			t.Fatalf("%s: malformed cluster stat %+v", k, cs)
		}
	}
}
