// Package algo implements the paper's graph-algorithm suite on top of the
// FLASH programming model (flash package): the eight core applications of
// Table V (CC, BFS, BC, MIS, MM, KC, TC, GC), the six advanced applications
// of Table VI (SCC, BCC, LPA, MSF, RC, CL), the optimized variants the paper
// highlights (CC-opt, MM-opt, KC-opt), and a few extras (SSSP, PageRank)
// mentioned as in-scope for the model.
//
// Every function builds a private engine from the supplied options, runs the
// algorithm to convergence, extracts plain-Go results, and closes the
// engine. Algorithms that use virtual edge sets (communication beyond the
// neighborhood: CC-opt, MM-opt, SCC, CL, RC) enable full mirroring
// themselves; callers don't need to.
//
// Implementations follow the paper's pseudocode (Algorithms 2-3 and 9-23)
// closely so the LLoC productivity comparison of Table I is meaningful; where
// the pseudocode has typos the intended algorithm from its cited source is
// implemented, with a comment noting the deviation.
package algo

import (
	"flash"
	"flash/graph"
	"flash/metrics"
)

// VID re-exports the vertex id type for convenience.
type VID = graph.VID

const (
	inf32 = int32(1 << 30)
	none  = int32(-1)
)

func newEngine[V any](g *graph.Graph, opts []flash.Option, extra ...flash.Option) (*flash.Engine[V], error) {
	return flash.NewEngine[V](g, append(append([]flash.Option{}, opts...), extra...)...)
}

// newTraceCollector allocates a metrics collector for superstep counting in
// tests and experiments.
func newTraceCollector() *metrics.Collector { return metrics.New() }
