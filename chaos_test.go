// Chaos soak test: the full public stack (algo → flash → core → comm) run
// under a seeded Faulty transport with connection drops, worker stalls,
// probabilistic send failures and frame delay/reordering. The runtime must
// absorb every injected fault through retry and checkpoint recovery and
// produce results identical to the fault-free run.
package flash_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"flash"
	"flash/algo"
	"flash/graph"
	"flash/metrics"
)

// chaosPlan scripts, for a w-worker engine, at least one transient connection
// drop and one worker stall (the acceptance scenario) plus background
// probabilistic faults, all seeded for reproducibility.
func chaosPlan(seed int64, w int) flash.FaultPlan {
	p := flash.FaultPlan{
		Seed:         seed,
		SendFailProb: 0.02,
		MaxSendFails: 10,
		DelayProb:    0.2,
		Reorder:      true,
	}
	if w >= 2 {
		p.Drops = []flash.ConnDrop{{From: 1, To: 0, Round: 2, Count: 2}}
		p.Stalls = []flash.WorkerStall{{Worker: w - 1, Round: 3, Delay: 250 * time.Millisecond}}
		p.Crashes = []flash.WorkerCrash{{Worker: 0, Round: 6}}
	}
	return p
}

// chaosOpts arms recovery: frequent checkpoints and a drain timeout that
// turns the scripted stall into a detectable failure.
func chaosOpts(w int, seed int64, col *metrics.Collector) []flash.Option {
	return []flash.Option{
		flash.WithWorkers(w),
		flash.WithCollector(col),
		flash.WithCheckpointEvery(2),
		flash.WithDrainTimeout(80 * time.Millisecond),
		flash.WithFaultPlan(chaosPlan(seed, w)),
	}
}

func TestChaosBFSAndCCMatchFaultFree(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":   graph.GenErdosRenyi(200, 900, 5),
		"rmat": graph.GenRMAT(256, 1024, 6),
	}
	for name, g := range graphs {
		wantDis, err := algo.BFS(g, 0, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		wantCC, err := algo.CC(g, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		// testing/quick-style iteration: every (workers, seed) cell runs the
		// same scripted faults with a different probabilistic-fault stream.
		for _, w := range []int{1, 2, 3, 4, 8} {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("%s/w%d/seed%d", name, w, seed), func(t *testing.T) {
					col := metrics.New()
					gotDis, err := algo.BFS(g, 0, chaosOpts(w, seed, col)...)
					if err != nil {
						t.Fatalf("bfs under chaos: %v", err)
					}
					for v := range wantDis {
						if gotDis[v] != wantDis[v] {
							t.Fatalf("bfs dist[%d]=%d want %d", v, gotDis[v], wantDis[v])
						}
					}
					gotCC, err := algo.CC(g, chaosOpts(w, seed+100, col)...)
					if err != nil {
						t.Fatalf("cc under chaos: %v", err)
					}
					for v := range wantCC {
						if gotCC[v] != wantCC[v] {
							t.Fatalf("cc label[%d]=%d want %d", v, gotCC[v], wantCC[v])
						}
					}
					if w >= 2 {
						// The scripted drop must have been absorbed by send
						// retries and the scripted stall/crash by checkpoint
						// recovery.
						if col.Retries == 0 {
							t.Errorf("no send retries recorded under chaos (%v)", col)
						}
						if col.Recoveries == 0 {
							t.Errorf("no checkpoint recoveries recorded under chaos (%v)", col)
						}
					}
				})
			}
		}
	}
}

// lossOpts arms worker-loss survival: a durable file-backed checkpoint store,
// heartbeats feeding the liveness layer, a short drain deadline so a dead
// peer is detected quickly, and one scripted hard kill of the last worker.
func lossOpts(t *testing.T, w int, col *metrics.Collector, tcp bool) []flash.Option {
	t.Helper()
	store, err := flash.NewFileCheckpointStore(filepath.Join(t.TempDir(), "ckpt.flash"))
	if err != nil {
		t.Fatal(err)
	}
	opts := []flash.Option{
		flash.WithWorkers(w),
		flash.WithCollector(col),
		flash.WithCheckpointEvery(2),
		flash.WithCheckpointStore(store),
		flash.WithMaxRecoveries(6),
		flash.WithHeartbeatEvery(10 * time.Millisecond),
		flash.WithDrainTimeout(150 * time.Millisecond),
		flash.WithFaultPlan(flash.FaultPlan{
			Kills: []flash.WorkerKill{{Worker: w - 1, Round: 3}},
		}),
	}
	if tcp {
		opts = append(opts, flash.WithTCP())
	}
	return opts
}

// TestChaosWorkerLossColdRestart is the worker-loss acceptance scenario on
// the full public stack: a worker is hard-killed mid-run (every transport
// call of its fails permanently), the survivors' liveness deadline names it
// dead, the engine cold-restarts it from the graph and the file-backed
// checkpoint store, and BFS/CC/PageRank finish byte-identical to fault-free
// runs — on both the in-memory and the loopback-TCP transport.
func TestChaosWorkerLossColdRestart(t *testing.T) {
	g := graph.GenErdosRenyi(200, 900, 5)
	wantDis, err := algo.BFS(g, 0, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	wantCC, err := algo.CC(g, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	wantPR, err := algo.PageRank(g, 15, 0, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	wantDist, err := algo.SSSP(g, 0, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	wantKT, err := algo.KTruss(g, 3, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			colBFS := metrics.New()
			gotDis, err := algo.BFS(g, 0, lossOpts(t, 4, colBFS, tcp)...)
			if err != nil {
				t.Fatalf("bfs did not survive the kill: %v", err)
			}
			for v := range wantDis {
				if gotDis[v] != wantDis[v] {
					t.Fatalf("bfs dist[%d]=%d want %d", v, gotDis[v], wantDis[v])
				}
			}
			if colBFS.Restarts == 0 {
				t.Errorf("bfs: no cold restarts recorded (%v)", colBFS)
			}
			if colBFS.CheckpointBytes == 0 {
				t.Errorf("bfs: no checkpoint bytes recorded despite a file store (%v)", colBFS)
			}

			colCC := metrics.New()
			gotCC, err := algo.CC(g, lossOpts(t, 4, colCC, tcp)...)
			if err != nil {
				t.Fatalf("cc did not survive the kill: %v", err)
			}
			for v := range wantCC {
				if gotCC[v] != wantCC[v] {
					t.Fatalf("cc label[%d]=%d want %d", v, gotCC[v], wantCC[v])
				}
			}
			if colCC.Restarts == 0 {
				t.Errorf("cc: no cold restarts recorded (%v)", colCC)
			}

			// PageRank bounded to 2 workers so the float reduction order is
			// deterministic and exact equality is the correct assertion.
			colPR := metrics.New()
			gotPR, err := algo.PageRank(g, 15, 0, lossOpts(t, 2, colPR, tcp)...)
			if err != nil {
				t.Fatalf("pagerank did not survive the kill: %v", err)
			}
			for v := range wantPR {
				if gotPR[v] != wantPR[v] {
					t.Fatalf("rank[%d]=%v want %v (not bit-identical)", v, gotPR[v], wantPR[v])
				}
			}
			if colPR.Restarts == 0 {
				t.Errorf("pagerank: no cold restarts recorded (%v)", colPR)
			}

			// SSSP's min-reduction over float distances is exact regardless
			// of reduction order, so byte-identity holds at any worker count.
			colSP := metrics.New()
			gotDist, err := algo.SSSP(g, 0, lossOpts(t, 4, colSP, tcp)...)
			if err != nil {
				t.Fatalf("sssp did not survive the kill: %v", err)
			}
			for v := range wantDist {
				if gotDist[v] != wantDist[v] {
					t.Fatalf("sssp dist[%d]=%v want %v", v, gotDist[v], wantDist[v])
				}
			}
			if colSP.Restarts == 0 {
				t.Errorf("sssp: no cold restarts recorded (%v)", colSP)
			}

			// k-truss exercises variable-length neighbor-list properties
			// through checkpoint encode/decode; the surviving edge set is
			// unique, so compare as a set.
			colKT := metrics.New()
			gotKT, err := algo.KTruss(g, 3, lossOpts(t, 4, colKT, tcp)...)
			if err != nil {
				t.Fatalf("ktruss did not survive the kill: %v", err)
			}
			if len(gotKT) != len(wantKT) {
				t.Fatalf("ktruss: %d edges, want %d", len(gotKT), len(wantKT))
			}
			inTruss := make(map[[2]graph.VID]bool, len(wantKT))
			for _, e := range wantKT {
				inTruss[e] = true
			}
			for _, e := range gotKT {
				if !inTruss[e] {
					t.Fatalf("ktruss: edge %v not in fault-free truss", e)
				}
			}
			if colKT.Restarts == 0 {
				t.Errorf("ktruss: no cold restarts recorded (%v)", colKT)
			}
		})
	}
}

// resizeChaosOpts arms the elastic-membership acceptance scenario: a 2-worker
// engine scheduled to grow to 8 workers after superstep 2 and shrink to 4
// after superstep 4, with the first migration round interrupted by a hard
// kill of worker 1. Recovery must roll the resize back to the pre-resize
// image, cold-restart the victim, and retry the membership change.
func resizeChaosOpts(t *testing.T, col *metrics.Collector, tcp bool) []flash.Option {
	t.Helper()
	store, err := flash.NewFileCheckpointStore(filepath.Join(t.TempDir(), "ckpt.flash"))
	if err != nil {
		t.Fatal(err)
	}
	opts := []flash.Option{
		flash.WithWorkers(2),
		flash.WithCollector(col),
		flash.WithCheckpointEvery(1),
		flash.WithCheckpointStore(store),
		flash.WithMaxRecoveries(6),
		flash.WithHeartbeatEvery(10 * time.Millisecond),
		flash.WithDrainTimeout(200 * time.Millisecond),
		flash.WithResizePolicy(flash.SchedulePolicy(map[int]int{2: 8, 4: 4})),
		flash.WithFaultPlan(flash.FaultPlan{
			ResizeKills: []flash.ResizeKill{{Worker: 1, Phase: 0}},
		}),
	}
	if tcp {
		opts = append(opts, flash.WithTCP())
	}
	return opts
}

// TestChaosElasticResizeWithMidMigrationKill is the elastic-membership
// acceptance scenario on the full public stack: a run that scales w2→w8→w4
// mid-flight, with the first migration hard-killed partway, must finish
// byte-identical to a fault-free fixed-4-worker run on both transports.
// Exact-arithmetic algorithms only: BFS/CC/SSSP reduce by min and k-truss by
// set peeling, so results are invariant to membership; PageRank's float sum
// order is not.
func TestChaosElasticResizeWithMidMigrationKill(t *testing.T) {
	g := graph.GenErdosRenyi(200, 900, 5)
	wantDis, err := algo.BFS(g, 0, flash.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	wantCC, err := algo.CC(g, flash.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	wantSP, err := algo.SSSP(g, 0, flash.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	wantKT, err := algo.KTruss(g, 3, flash.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			checkCol := func(what string, col *metrics.Collector) {
				t.Helper()
				if col.Resizes != 2 {
					t.Errorf("%s: %d resizes completed, want 2 (%v)", what, col.Resizes, col)
				}
				if col.MigratedBytes == 0 {
					t.Errorf("%s: no migration traffic recorded (%v)", what, col)
				}
				if col.Recoveries == 0 {
					t.Errorf("%s: the mid-migration kill caused no recovery (%v)", what, col)
				}
				if col.Restarts == 0 {
					t.Errorf("%s: the killed worker was never cold-restarted (%v)", what, col)
				}
			}

			colBFS := metrics.New()
			gotDis, err := algo.BFS(g, 0, resizeChaosOpts(t, colBFS, tcp)...)
			if err != nil {
				t.Fatalf("bfs did not survive the elastic run: %v", err)
			}
			for v := range wantDis {
				if gotDis[v] != wantDis[v] {
					t.Fatalf("bfs dist[%d]=%d want %d", v, gotDis[v], wantDis[v])
				}
			}
			checkCol("bfs", colBFS)

			colCC := metrics.New()
			gotCC, err := algo.CC(g, resizeChaosOpts(t, colCC, tcp)...)
			if err != nil {
				t.Fatalf("cc did not survive the elastic run: %v", err)
			}
			for v := range wantCC {
				if gotCC[v] != wantCC[v] {
					t.Fatalf("cc label[%d]=%d want %d", v, gotCC[v], wantCC[v])
				}
			}
			checkCol("cc", colCC)

			colSP := metrics.New()
			gotSP, err := algo.SSSP(g, 0, resizeChaosOpts(t, colSP, tcp)...)
			if err != nil {
				t.Fatalf("sssp did not survive the elastic run: %v", err)
			}
			for v := range wantSP {
				if gotSP[v] != wantSP[v] {
					t.Fatalf("sssp dist[%d]=%v want %v", v, gotSP[v], wantSP[v])
				}
			}
			checkCol("sssp", colSP)

			// k-truss migrates variable-length neighbor-list properties
			// between partitions — the codec-heavy corner of migration.
			colKT := metrics.New()
			gotKT, err := algo.KTruss(g, 3, resizeChaosOpts(t, colKT, tcp)...)
			if err != nil {
				t.Fatalf("ktruss did not survive the elastic run: %v", err)
			}
			if len(gotKT) != len(wantKT) {
				t.Fatalf("ktruss: %d edges, want %d", len(gotKT), len(wantKT))
			}
			inTruss := make(map[[2]graph.VID]bool, len(wantKT))
			for _, e := range wantKT {
				inTruss[e] = true
			}
			for _, e := range gotKT {
				if !inTruss[e] {
					t.Fatalf("ktruss: edge %v not in fault-free truss", e)
				}
			}
			checkCol("ktruss", colKT)
		})
	}
}

// TestStallConvertsToErrorBothTransports verifies the bounded-failure
// guarantee: without checkpointing armed, a worker that stalls past the
// superstep deadline turns into a typed ErrPeerStalled within a bounded
// window on both transports — never a hang.
func TestStallConvertsToErrorBothTransports(t *testing.T) {
	g := graph.GenErdosRenyi(150, 600, 7)
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			opts := []flash.Option{
				flash.WithWorkers(2),
				flash.WithDrainTimeout(100 * time.Millisecond),
				flash.WithFaultPlan(flash.FaultPlan{
					Stalls: []flash.WorkerStall{{Worker: 1, Round: 2, Delay: 700 * time.Millisecond}},
				}),
			}
			if tcp {
				opts = append(opts, flash.WithTCP())
			}
			start := time.Now()
			_, err := algo.BFS(g, 0, opts...)
			if err == nil {
				t.Fatal("stall absorbed without checkpointing enabled")
			}
			if !errors.Is(err, flash.ErrPeerStalled) {
				t.Fatalf("err=%v, want ErrPeerStalled", err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("failure took %v, want bounded detection", elapsed)
			}
		})
	}
}

// TestChaosPageRankBitIdentical verifies float results survive recovery
// bit-for-bit. Bounded to <=2 workers: with at most one remote partial per
// target the floating-point reduction order is deterministic, so exact
// equality is the correct assertion (beyond that, reduction order — not
// fault handling — perturbs last-bit rounding).
func TestChaosPageRankBitIdentical(t *testing.T) {
	g := graph.GenRMAT(200, 800, 9)
	for _, w := range []int{1, 2} {
		want, err := algo.PageRank(g, 15, 0, flash.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.New()
		got, err := algo.PageRank(g, 15, 0, chaosOpts(w, 4, col)...)
		if err != nil {
			t.Fatalf("pagerank under chaos (w=%d): %v", w, err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("w=%d: rank[%d]=%v want %v (not bit-identical)", w, v, got[v], want[v])
			}
		}
	}
}
