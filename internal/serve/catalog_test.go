package serve

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"flash/algo"
	"flash/graph"
)

// TestCatalogAccounting pins the memory model of the engine split at the
// catalog level: the CSR and partition bytes of a graph are paid once when
// it is loaded/first partitioned, and do not grow as more jobs run over it —
// each job pays only its own StateBytes.
func TestCatalogAccounting(t *testing.T) {
	spec := GraphSpec{Name: "g", Gen: "er", N: 256, M: 1024, Seed: 4}
	srv, err := NewServer(ServerConfig{
		Scheduler: SchedulerConfig{MaxConcurrent: 4, Workers: 3},
		Preload:   []GraphSpec{spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cat := srv.Catalog()

	// Graph bytes equal the standalone CSR footprint; nothing partitioned yet.
	g, err := BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	gb, sb := cat.Bytes()
	if gb != g.MemBytes() {
		t.Fatalf("catalog graph bytes %d != CSR bytes %d", gb, g.MemBytes())
	}
	if sb != 0 {
		t.Fatalf("catalog shared bytes %d before any job, want 0", sb)
	}

	runJobs := func(n int) []uint64 {
		t.Helper()
		state := make([]uint64, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				job, err := srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "cc"})
				if err != nil {
					t.Error(err)
					return
				}
				<-job.Done()
				res, err := job.Result()
				if err != nil {
					t.Error(err)
					return
				}
				state[i] = res.StateBytes
			}(i)
		}
		wg.Wait()
		return state
	}

	// First job populates the partition cache: shared bytes become non-zero.
	if state := runJobs(1); state[0] == 0 {
		t.Fatal("job reports zero StateBytes")
	}
	_, sbAfterOne := cat.Bytes()
	if sbAfterOne == 0 {
		t.Fatal("shared partition bytes still zero after a job")
	}

	// More concurrent jobs at the same configuration: every one pays its own
	// StateBytes, but the catalog-side immutable footprint must not move.
	for _, s := range runJobs(4) {
		if s == 0 {
			t.Fatal("concurrent job reports zero StateBytes")
		}
	}
	gbAfter, sbAfter := cat.Bytes()
	if gbAfter != gb {
		t.Fatalf("graph bytes grew with jobs: %d -> %d", gb, gbAfter)
	}
	if sbAfter != sbAfterOne {
		t.Fatalf("shared partition bytes grew with jobs: %d -> %d", sbAfterOne, sbAfter)
	}
	h, err := cat.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if n := h.Partitions(); n != 1 {
		t.Fatalf("%d partitions cached for one configuration, want 1", n)
	}

	// Eviction removes the graph's footprint from the catalog totals.
	if err := cat.Evict("g"); err != nil {
		t.Fatal(err)
	}
	gbFinal, sbFinal := cat.Bytes()
	if gbFinal != 0 || sbFinal != 0 {
		t.Fatalf("bytes after eviction = %d/%d, want 0/0", gbFinal, sbFinal)
	}
}

func TestCatalogLifecycle(t *testing.T) {
	cat := NewCatalog()
	if _, err := cat.Load(GraphSpec{Name: "a", Gen: "path", N: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Load(GraphSpec{Name: "b", Gen: "tree", N: 31, Seed: 2, Weighted: true}); err != nil {
		t.Fatal(err)
	}

	// Duplicate name is a typed conflict.
	_, err := cat.Load(GraphSpec{Name: "a", Gen: "path", N: 8})
	var dup *DuplicateGraphError
	if !errors.As(err, &dup) || dup.Graph != "a" {
		t.Fatalf("duplicate load: %v", err)
	}

	infos := cat.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("List() = %+v", infos)
	}
	if !infos[1].Weighted {
		t.Fatal("weighted spec did not produce a weighted graph")
	}
	if infos[0].GraphBytes == 0 {
		t.Fatal("listing reports zero GraphBytes")
	}

	if err := cat.Evict("a"); err != nil {
		t.Fatal(err)
	}
	var ug *UnknownGraphError
	if err := cat.Evict("a"); !errors.As(err, &ug) || ug.Graph != "a" {
		t.Fatalf("second evict: %v", err)
	}
	if _, err := cat.Get("a"); !errors.As(err, &ug) {
		t.Fatalf("Get after evict: %v", err)
	}
}

func TestBuildGraphRejections(t *testing.T) {
	cases := []struct {
		name  string
		spec  GraphSpec
		field string
	}{
		{"unknown generator", GraphSpec{Name: "x", Gen: "nope", N: 10}, "gen"},
		{"no gen or path", GraphSpec{Name: "x", N: 10}, "gen"},
		{"bad n", GraphSpec{Name: "x", Gen: "rmat", N: 0}, "n"},
		{"grid without dims", GraphSpec{Name: "x", Gen: "grid", N: 10}, "rows"},
		{"missing file", GraphSpec{Name: "x", Path: "/nonexistent/g.txt"}, "path"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildGraph(tc.spec)
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("got %v, want RequestError", err)
			}
			if re.Field != tc.field {
				t.Fatalf("RequestError.Field = %q, want %q", re.Field, tc.field)
			}
		})
	}
	// Load propagates spec validation, including the missing name.
	cat := NewCatalog()
	_, err := cat.Load(GraphSpec{Gen: "path", N: 4})
	var re *RequestError
	if !errors.As(err, &re) || re.Field != "name" {
		t.Fatalf("nameless load: %v", err)
	}
}

// TestCatalogBlockFile loads a FLASHBLK file through the catalog's path
// sniffing and checks that (a) the listing marks the graph out-of-core with
// only the skeleton resident, (b) a served job over it returns the same
// values as the in-memory graph, and (c) weight demands the file cannot meet
// are rejected at load time.
func TestCatalogBlockFile(t *testing.T) {
	g := graph.GenRMAT(512, 512*8, 31)
	dir := t.TempDir()
	path := filepath.Join(dir, "rmat.blk")
	if err := graph.WriteBlockFile(g, path, 8<<10); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(ServerConfig{
		Scheduler: SchedulerConfig{MaxConcurrent: 2, Workers: 2},
		Preload:   []GraphSpec{{Name: "blk", Path: path}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	infos := srv.Catalog().List()
	if len(infos) != 1 || !infos[0].Ooc {
		t.Fatalf("listing does not mark the block graph ooc: %+v", infos)
	}
	if infos[0].Edges != g.NumEdges() || infos[0].Vertices != g.NumVertices() {
		t.Fatalf("listing shape wrong: %+v", infos[0])
	}
	// Skeleton-only residency: far below the full CSR footprint.
	if infos[0].GraphBytes >= g.MemBytes() {
		t.Fatalf("ooc graph bytes %d not below CSR bytes %d", infos[0].GraphBytes, g.MemBytes())
	}

	job, err := srv.SubmitRequest(&JobRequest{Graph: "blk", Algo: "cc"})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	res, err := job.Result()
	if err != nil {
		t.Fatalf("block job failed: %v", err)
	}
	want, err := algo.CC(g)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.Values.([]uint32)
	if !ok {
		t.Fatalf("cc values have type %T", res.Values)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cc[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// An unweighted block file cannot serve a weighted spec.
	if _, err := srv.Catalog().Load(GraphSpec{Name: "wblk", Path: path, Weighted: true}); err == nil {
		t.Fatalf("weighted spec over unweighted block file accepted")
	}
}
