package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"flash/internal/lloc"
)

// codeRef names the functions implementing one algorithm in one system.
type codeRef struct {
	File  string // repo-relative path
	Funcs []string
}

// tableIRow is one row of Table I.
type tableIRow struct {
	Algo string
	Refs map[System]codeRef // absent system = inexpressible (the paper's ✗)
}

// tableIRows maps every Table I algorithm variant to the functions that
// implement it in this repository, per system.
var tableIRows = []tableIRow{
	{"CC-basic", map[System]codeRef{
		Flash:   {"algo/cc.go", []string{"CC"}},
		Pregel:  {"baseline/pregel/algorithms.go", []string{"CC"}},
		PowerG:  {"baseline/gas/algorithms.go", []string{"CC"}},
		Gemini:  {"baseline/gemini/algorithms.go", []string{"CC"}},
		LigraSM: {"baseline/ligra/algorithms.go", []string{"CC"}},
	}},
	{"CC-opt", map[System]codeRef{
		Flash: {"algo/ccopt.go", []string{"CCOpt"}},
	}},
	{"BFS", map[System]codeRef{
		Flash:   {"algo/bfs.go", []string{"BFS"}},
		Pregel:  {"baseline/pregel/algorithms.go", []string{"BFS"}},
		PowerG:  {"baseline/gas/algorithms.go", []string{"BFS"}},
		Gemini:  {"baseline/gemini/algorithms.go", []string{"BFS"}},
		LigraSM: {"baseline/ligra/algorithms.go", []string{"BFS"}},
	}},
	{"BC", map[System]codeRef{
		Flash:   {"algo/bc.go", []string{"BC"}},
		Pregel:  {"baseline/pregel/algorithms.go", []string{"BC"}},
		PowerG:  {"baseline/gas/algorithms.go", []string{"BC"}},
		Gemini:  {"baseline/gemini/algorithms.go", []string{"BC"}},
		LigraSM: {"baseline/ligra/algorithms.go", []string{"BC"}},
	}},
	{"MIS", map[System]codeRef{
		Flash:   {"algo/mis.go", []string{"MIS"}},
		Pregel:  {"baseline/pregel/algorithms.go", []string{"MIS"}},
		PowerG:  {"baseline/gas/algorithms.go", []string{"MIS"}},
		Gemini:  {"baseline/gemini/algorithms.go", []string{"MIS"}},
		LigraSM: {"baseline/ligra/algorithms.go", []string{"MIS"}},
	}},
	{"MM-basic", map[System]codeRef{
		Flash:   {"algo/mm.go", []string{"MM", "runBasicMM"}},
		Pregel:  {"baseline/pregel/algorithms.go", []string{"MM"}},
		PowerG:  {"baseline/gas/algorithms.go", []string{"MM"}},
		Gemini:  {"baseline/gemini/algorithms.go", []string{"MM"}},
		LigraSM: {"baseline/ligra/algorithms.go", []string{"MM"}},
	}},
	{"MM-opt", map[System]codeRef{
		Flash: {"algo/mmopt.go", []string{"MMOpt"}},
	}},
	{"KC", map[System]codeRef{
		Flash:   {"algo/kcore.go", []string{"KC"}},
		Pregel:  {"baseline/pregel/algorithms.go", []string{"KC", "kcIterative"}},
		PowerG:  {"baseline/gas/algorithms.go", []string{"KC"}},
		LigraSM: {"baseline/ligra/algorithms.go", []string{"KC"}},
	}},
	{"TC", map[System]codeRef{
		Flash:   {"algo/tc.go", []string{"TC", "intersectCount"}},
		Pregel:  {"baseline/pregel/algorithms.go", []string{"TC", "sortedIntersect"}},
		PowerG:  {"baseline/gas/algorithms.go", []string{"TC", "sortedIntersect"}},
		LigraSM: {"baseline/ligra/algorithms.go", []string{"TC", "sortedIntersect"}},
	}},
	{"GC", map[System]codeRef{
		Flash:  {"algo/gc.go", []string{"GC", "mex"}},
		Pregel: {"baseline/pregel/algorithms.go", []string{"GC"}},
		PowerG: {"baseline/gas/algorithms.go", []string{"GC"}},
	}},
	{"SCC", map[System]codeRef{
		Flash:  {"algo/scc.go", []string{"SCC"}},
		Pregel: {"baseline/pregel/advanced.go", []string{"SCC"}},
	}},
	{"BCC", map[System]codeRef{
		Flash:  {"algo/bcc.go", []string{"BCC"}},
		Pregel: {"baseline/pregel/advanced.go", []string{"BCC"}},
	}},
	{"LPA", map[System]codeRef{
		Flash:  {"algo/lpa.go", []string{"LPA"}},
		PowerG: {"baseline/gas/algorithms.go", []string{"LPA"}},
		Pregel: {"baseline/pregel/algorithms.go", []string{"LPA"}},
	}},
	{"MSF", map[System]codeRef{
		Flash:  {"algo/msf.go", []string{"MSF", "kruskal"}},
		Pregel: {"baseline/pregel/advanced.go", []string{"MSF"}},
	}},
	{"RC", map[System]codeRef{
		Flash: {"algo/rc.go", []string{"RC"}},
	}},
	{"CL", map[System]codeRef{
		Flash: {"algo/cl.go", []string{"CL", "countCliques", "intersect"}},
	}},
}

// RepoRoot locates the module root (the directory containing go.mod) from
// the current working directory.
func RepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("bench: go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// TableI counts logical lines per (algorithm, system) and prints the
// paper's Table I analog. Empty cells print as the paper's ✗.
func TableI(w io.Writer) error {
	root, err := RepoRoot()
	if err != nil {
		return err
	}
	counts := map[string]map[System]int{}
	for _, row := range tableIRows {
		counts[row.Algo] = map[System]int{}
		for sys, ref := range row.Refs {
			rep, err := lloc.CountFile(filepath.Join(root, ref.File))
			if err != nil {
				return fmt.Errorf("bench: %s/%s: %w", row.Algo, sys, err)
			}
			want := map[string]bool{}
			for _, f := range ref.Funcs {
				want[f] = true
			}
			total := 0
			found := 0
			for _, fc := range rep.Funcs {
				if want[fc.Name] {
					total += fc.Lines
					found++
				}
			}
			if found != len(ref.Funcs) {
				return fmt.Errorf("bench: %s/%s: found %d of %d functions in %s",
					row.Algo, sys, found, len(ref.Funcs), ref.File)
			}
			counts[row.Algo][sys] = total
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Algo.")
	for _, s := range Systems {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, row := range tableIRows {
		fmt.Fprintf(tw, "%s", row.Algo)
		for _, s := range Systems {
			if c, ok := counts[row.Algo][s]; ok {
				fmt.Fprintf(tw, "\t%d", c)
			} else {
				fmt.Fprintf(tw, "\tx")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return nil
}
