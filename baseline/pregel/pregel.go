// Package pregel is a miniature Pregel-model engine (Malewicz et al.,
// re-implemented after Pregel+): vertices exchange messages in BSP
// supersteps, each active vertex runs a user Compute function over its
// inbox, optional combiners pre-aggregate messages per target, and the run
// terminates when every vertex has voted to halt and no messages are in
// flight.
//
// It shares the graph/partition/comm substrate with the FLASH engine so the
// Table V / Fig. 1 comparisons isolate the *programming model*: per-message
// materialization, no frontier bitmaps, no pull mode, no beyond-neighborhood
// communication.
package pregel

import (
	"encoding/binary"
	"fmt"
	"sync"

	"flash/graph"
	"flash/internal/bitset"
	"flash/internal/comm"
	"flash/internal/partition"
)

// Config parameterizes a run.
type Config struct {
	// Workers is the number of BSP workers (default 4).
	Workers int
	// MaxSupersteps aborts runaway programs (default 1<<20).
	MaxSupersteps int
}

func (c *Config) fill() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.MaxSupersteps == 0 {
		c.MaxSupersteps = 1 << 20
	}
}

// Context is handed to Compute for messaging and halting.
type Context[V, M any] struct {
	w         *worker[V, M]
	superstep int
	self      graph.VID
	halted    bool
}

// Superstep returns the current superstep number (0-based).
func (c *Context[V, M]) Superstep() int { return c.superstep }

// Self returns the vertex this Compute call runs for.
func (c *Context[V, M]) Self() graph.VID { return c.self }

// OutNeighbors returns the vertex's out-neighbors.
func (c *Context[V, M]) OutNeighbors() []graph.VID { return c.w.g.OutNeighbors(c.self) }

// OutDegree returns the vertex's out-degree.
func (c *Context[V, M]) OutDegree() int { return c.w.g.OutDegree(c.self) }

// InNeighbors returns the vertex's in-neighbors (directed algorithms such
// as SCC traverse the transpose by messaging in-neighbors).
func (c *Context[V, M]) InNeighbors() []graph.VID { return c.w.g.InNeighbors(c.self) }

// NumVertices returns |V|.
func (c *Context[V, M]) NumVertices() int { return c.w.g.NumVertices() }

// Send delivers msg to dst at the next superstep.
func (c *Context[V, M]) Send(dst graph.VID, msg M) { c.w.send(dst, msg) }

// SendToNeighbors sends msg along all out-edges.
func (c *Context[V, M]) SendToNeighbors(msg M) {
	for _, d := range c.w.g.OutNeighbors(c.self) {
		c.w.send(d, msg)
	}
}

// SendToNeighborsW sends a per-edge message built from the edge weight.
func (c *Context[V, M]) SendToNeighborsW(f func(dst graph.VID, w float32) M) {
	adj := c.w.g.OutNeighbors(c.self)
	ws := c.w.g.OutWeights(c.self)
	for i, d := range adj {
		var wt float32
		if ws != nil {
			wt = ws[i]
		}
		c.w.send(d, f(d, wt))
	}
}

// VoteToHalt deactivates the vertex until a message wakes it.
func (c *Context[V, M]) VoteToHalt() { c.halted = true }

// Program is a vertex program over value type V and message type M.
type Program[V, M any] struct {
	// Init produces the initial vertex value; all vertices start active.
	Init func(v graph.VID, deg int) V
	// Compute runs on every active vertex each superstep.
	Compute func(ctx *Context[V, M], val *V, msgs []M)
	// Combine optionally pre-aggregates messages for one target.
	Combine func(a, b M) M
}

// worker holds one worker's shard.
type worker[V, M any] struct {
	id    int
	g     *graph.Graph
	place partition.Placement
	tr    comm.Transport
	codec comm.Codec[M]
	prog  *Program[V, M]

	vals   []V // local master values, by local index
	halted *bitset.Bitset
	inbox  [][]M // per local index

	// outgoing message buffers: combined map per destination worker when a
	// combiner exists, else raw append buffers.
	outRaw  [][]byte
	pending map[graph.VID]M // combiner staging (local worker scope)

	msgsSent uint64
}

func (w *worker[V, M]) send(dst graph.VID, msg M) {
	w.msgsSent++
	if w.prog.Combine != nil {
		if old, ok := w.pending[dst]; ok {
			w.pending[dst] = w.prog.Combine(old, msg)
		} else {
			w.pending[dst] = msg
		}
		return
	}
	w.bufferMsg(dst, msg)
}

func (w *worker[V, M]) bufferMsg(dst graph.VID, msg M) {
	to := w.place.Owner(dst)
	buf := w.outRaw[to]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dst))
	buf = w.codec.Append(buf, &msg)
	w.outRaw[to] = buf
}

func (w *worker[V, M]) flush() error {
	if w.prog.Combine != nil {
		for dst, msg := range w.pending {
			w.bufferMsg(dst, msg)
			delete(w.pending, dst)
		}
	}
	for to, buf := range w.outRaw {
		if len(buf) > 0 {
			if err := w.tr.Send(w.id, to, buf); err != nil {
				return err
			}
			w.outRaw[to] = nil
		}
	}
	return w.tr.EndRound(w.id)
}

// drain receives this round's messages into inboxes; returns how many
// arrived.
func (w *worker[V, M]) drain() (int, error) {
	received := 0
	err := w.tr.Drain(w.id, func(_ int, data []byte) {
		off := 0
		for off < len(data) {
			dst := graph.VID(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			var msg M
			n, err := w.codec.Decode(data[off:], &msg)
			if err != nil {
				panic(fmt.Sprintf("pregel: corrupt message frame: %v", err))
			}
			off += n
			l := w.place.LocalIndex(dst)
			if w.prog.Combine != nil && len(w.inbox[l]) == 1 {
				w.inbox[l][0] = w.prog.Combine(w.inbox[l][0], msg)
			} else {
				w.inbox[l] = append(w.inbox[l], msg)
			}
			received++
		}
	})
	return received, err
}

// Result of a run.
type Result[V any] struct {
	Values     []V
	Supersteps int
	Messages   uint64
}

// Run executes the program to termination and returns final vertex values.
func Run[V, M any](g *graph.Graph, prog Program[V, M], cfg Config) (Result[V], error) {
	cfg.fill()
	if prog.Init == nil || prog.Compute == nil {
		return Result[V]{}, fmt.Errorf("pregel: program needs Init and Compute")
	}
	place := partition.NewRange(g.NumVertices(), cfg.Workers)
	tr := comm.NewMem(cfg.Workers)
	defer tr.Close()

	workers := make([]*worker[V, M], cfg.Workers)
	for i := range workers {
		lc := place.LocalCount(i)
		w := &worker[V, M]{
			id:     i,
			g:      g,
			place:  place,
			tr:     tr,
			codec:  comm.CodecFor[M](),
			prog:   &prog,
			vals:   make([]V, lc),
			halted: bitset.New(lc),
			inbox:  make([][]M, lc),
			outRaw: make([][]byte, cfg.Workers),
		}
		if prog.Combine != nil {
			w.pending = make(map[graph.VID]M)
		}
		for l := 0; l < lc; l++ {
			gid := place.GlobalID(i, l)
			w.vals[l] = prog.Init(gid, g.OutDegree(gid))
		}
		workers[i] = w
	}

	var res Result[V]
	for step := 0; ; step++ {
		if step > cfg.MaxSupersteps {
			return res, fmt.Errorf("pregel: exceeded %d supersteps", cfg.MaxSupersteps)
		}
		activeTotal := 0
		receivedTotal := 0
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, len(workers))
		for _, w := range workers {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				active := 0
				for l := 0; l < len(w.vals); l++ {
					if w.halted.Test(l) && len(w.inbox[l]) == 0 {
						continue
					}
					w.halted.Clear(l) // message delivery wakes the vertex
					active++
					ctx := Context[V, M]{w: w, superstep: step, self: w.place.GlobalID(w.id, l)}
					w.prog.Compute(&ctx, &w.vals[l], w.inbox[l])
					w.inbox[l] = w.inbox[l][:0]
					if ctx.halted {
						w.halted.Set(l)
					}
				}
				if err := w.flush(); err != nil {
					errs[w.id] = err
					return
				}
				received, err := w.drain()
				if err != nil {
					errs[w.id] = err
					return
				}
				mu.Lock()
				activeTotal += active
				receivedTotal += received
				mu.Unlock()
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return res, fmt.Errorf("pregel: superstep %d: worker %d: %w", step, i, err)
			}
		}
		res.Supersteps = step + 1
		if activeTotal == 0 && receivedTotal == 0 {
			break
		}
	}

	res.Values = make([]V, g.NumVertices())
	for _, w := range workers {
		for l := range w.vals {
			res.Values[w.place.GlobalID(w.id, l)] = w.vals[l]
		}
		res.Messages += w.msgsSent
	}
	return res, nil
}
