package algo

import (
	"fmt"
	"sort"
	"sync"

	"flash"
	"flash/graph"
)

// MSFEdge is one edge of the spanning forest.
type MSFEdge struct {
	U, V graph.VID
	W    float32
}

// MSFResult is the forest and its total weight.
type MSFResult struct {
	Edges  []MSFEdge
	Weight float64
}

// MSF computes a minimum spanning forest (paper Algorithm 21): every worker
// runs Kruskal over its local edge partition in parallel, the surviving
// edges are reduced to the driver, and a final Kruskal pass over the union
// yields the forest — correct because an edge outside a subgraph's MSF is
// never in the whole graph's MSF. The partition-local passes and the final
// pass use the paper's pre-defined dsu helpers. The workers parameter is
// taken from the options (default 4).
func MSF(g *graph.Graph, opts ...flash.Option) (MSFResult, error) {
	if !g.Weighted() {
		return MSFResult{}, fmt.Errorf("algo: MSF requires a weighted graph (use graph.WithRandomWeights)")
	}
	// The edge partition mirrors the engines' range placement: worker w owns
	// edges whose source is in its vertex range.
	e, err := newEngine[struct{ X int32 }](g, opts)
	if err != nil {
		return MSFResult{}, err
	}
	workers := e.Workers()
	e.Close()

	n := g.NumVertices()
	buckets := make([][]MSFEdge, workers)
	g.Edges(func(u, v graph.VID, w float32) bool {
		if u < v { // undirected: each edge once
			b := int(u) * workers / n
			buckets[b] = append(buckets[b], MSFEdge{U: u, V: v, W: w})
		}
		return true
	})

	// Local Kruskal per partition, in parallel.
	locals := make([][]MSFEdge, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			locals[w] = kruskal(n, buckets[w])
		}()
	}
	wg.Wait()

	// Reduce and run the final pass.
	var merged []MSFEdge
	for _, l := range locals {
		merged = append(merged, l...)
	}
	forest := kruskal(n, merged)

	res := MSFResult{Edges: forest}
	for _, fe := range forest {
		res.Weight += float64(fe.W)
	}
	return res, nil
}

// kruskal returns the MSF edges of the given edge list over n vertices.
func kruskal(n int, edges []MSFEdge) []MSFEdge {
	sorted := append([]MSFEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].W != sorted[j].W {
			return sorted[i].W < sorted[j].W
		}
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	f := flash.NewDSU(n)
	var out []MSFEdge
	for _, e := range sorted {
		if f.Union(e.U, e.V) {
			out = append(out, e)
		}
	}
	return out
}
