// Package lint is flashvet's analyzer framework: a dependency-free skeleton
// of golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) plus the
// custom analyzers that machine-check the runtime invariants PRs 1–8
// established in prose:
//
//	hotalloc   — no allocating constructs in //flash:hotpath functions
//	poolescape — pooled frames may not escape their Drain handler
//	commerr    — transport and Run errors must be checked or annotated
//	detorder   — no map iteration reachable from //flash:deterministic code
//	slotindex  — //flash:slot-indexed state is never indexed by a raw gid
//	sharedmut  — //flash:immutable types are never written after publish
//	blockres   — decoded block memory never outlives its superstep scope
//	phaseorder — //flash:phase call edges respect the superstep machine
//
// Since flashvet v2 the checks are interprocedural: RunAnalyzers builds a
// module-wide call graph with per-function dataflow summaries (callgraph.go,
// summary.go) that every analyzer consults through Pass.Mod, so taint and
// reachability survive function and package boundaries.
//
// The framework mirrors go/analysis closely enough that the analyzers could
// be ported to a real multichecker verbatim if x/tools ever becomes a
// dependency; it exists because this module is intentionally stdlib-only.
//
// The paper's code generator statically analyzes property accesses to decide
// what must be synchronized (§IV-B, Table II); this package applies the same
// idea to the engine's own source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //flash:allow markers.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// All returns every flashvet analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		HotAlloc,
		PoolEscape,
		CommErr,
		DetOrder,
		SlotIndex,
		SharedMut,
		BlockRes,
		PhaseOrder,
	}
}

// A Pass is one (analyzer, package) unit of work, mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Mod is the module-wide interprocedural view (call graph + summaries),
	// shared by every pass of one RunAnalyzers invocation.
	Mod *Module

	diags *[]Diagnostic

	// lineMarkers caches, per file line, the flash: markers present in
	// comments on that line (built lazily from the files' comment lists).
	lineMarkers map[string]map[int][]string
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless the line carries a matching
// //flash:allow <analyzer> <reason> suppression marker.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether the diagnostic line (or the line above it, for
// markers placed on their own line) carries //flash:allow <analyzer> <reason>.
func (p *Pass) allowedAt(pos token.Position) bool {
	for _, m := range p.markersAt(pos.Filename, pos.Line) {
		if rest, ok := strings.CutPrefix(m, "allow "); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 2 && fields[0] == p.Analyzer.Name {
				return true // name plus a non-empty reason
			}
		}
	}
	return false
}

// markersAt returns the flash: markers on line and line-1 of file.
func (p *Pass) markersAt(file string, line int) []string {
	if p.lineMarkers == nil {
		p.lineMarkers = map[string]map[int][]string{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body, ok := strings.CutPrefix(c.Text, "//flash:")
					if !ok {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					byLine := p.lineMarkers[cp.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						p.lineMarkers[cp.Filename] = byLine
					}
					byLine[cp.Line] = append(byLine[cp.Line], strings.TrimSpace(body))
				}
			}
		}
	}
	byLine := p.lineMarkers[file]
	return append(append([]string(nil), byLine[line]...), byLine[line-1]...)
}

// HasMarker reports whether the doc comment of decl contains //flash:<name>.
func HasMarker(decl *ast.FuncDecl, name string) bool {
	return commentGroupHasMarker(decl.Doc, name)
}

func commentGroupHasMarker(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		body, ok := strings.CutPrefix(c.Text, "//flash:")
		if !ok {
			continue
		}
		if field := strings.Fields(body); len(field) > 0 && field[0] == name {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return diags, err
}

// A Timing is one analyzer's cumulative wall time across all packages. The
// summary-engine build is reported under the pseudo-analyzer name "summaries".
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// RunAnalyzersTimed is RunAnalyzers plus per-analyzer wall times, so CI can
// track lint cost like a benchmark.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	start := time.Now()
	mod := BuildModule(pkgs)
	timings := []Timing{{Name: "summaries", Elapsed: time.Since(start)}}

	var diags []Diagnostic
	for _, a := range analyzers {
		start = time.Now()
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Mod:      mod,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Since(start)})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, timings, nil
}

// AuditSuppressions scans every loaded file for suppression markers that
// lack a reason string: //flash:allow needs "<analyzer> <reason...>" and
// //flash:ignore-err needs "<reason...>". A reasonless suppression is worse
// than a diagnostic — it silences the check and records nothing — so the
// self-check fails on them.
func AuditSuppressions(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body, ok := strings.CutPrefix(c.Text, "//flash:")
					if !ok {
						continue
					}
					fields := strings.Fields(body)
					if len(fields) == 0 {
						continue
					}
					var msg string
					switch fields[0] {
					case "allow":
						if len(fields) < 3 {
							msg = "//flash:allow without \"<analyzer> <reason>\": a reasonless suppression records nothing; state why the diagnostic is safe"
						}
					case "ignore-err":
						if len(fields) < 2 {
							msg = "//flash:ignore-err without a reason: state why this error cannot matter here"
						}
					}
					if msg != "" {
						out = append(out, Diagnostic{
							Pos:      pkg.Fset.Position(c.Pos()),
							Analyzer: "suppression-audit",
							Message:  msg,
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// receiverTypeName resolves the named type (sans pointer) a method selection
// is invoked on, or "" when the callee is not a method call.
func receiverTypeName(info *types.Info, call *ast.CallExpr) (typeName, methodName string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", "" // package-qualified call or conversion
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", ""
	}
	return named.Obj().Name(), sel.Sel.Name
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
