package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the PR-2 zero-allocation contract: a function whose doc
// comment carries //flash:hotpath must not contain allocating constructs.
//
// Flagged inside a hot function (and the function literals it contains):
//
//   - any call into package fmt, unless the call is an immediate argument of
//     a return statement (constructing the error for a failed superstep is a
//     cold path by definition);
//   - unsized make: make(map/chan) without a capacity hint, and
//     make([]T, 0) with no capacity argument;
//   - append whose destination cannot be shown to be pre-sized — the
//     destination must be a parameter (the caller owns the capacity), a
//     variable assigned from a call or a capacity-carrying make, or the
//     x[:0] reuse idiom;
//   - implicit interface boxing: a non-constant, non-pointer-shaped concrete
//     value passed where an interface is expected (each such conversion is a
//     heap allocation);
//   - a variable-capturing function literal inside a loop body (one closure
//     environment allocation per iteration; hoist it above the loop, as the
//     EdgeMap kernels do);
//   - (flashvet v2) a call to a module function whose dataflow summary says
//     it allocates in a loop, or — when the call itself sits inside a loop —
//     allocates at all. The intraprocedural version only saw allocation
//     syntax in the hot function's own body, so `for { helper() }` hid an
//     allocation storm one call away. Callees that are themselves marked
//     //flash:hotpath are exempt: they are checked independently and
//     zero-alloc by contract.
//
// panic arguments are exempt (cold), as are untyped constants (boxed into
// read-only static interface data by the compiler).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //flash:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasMarker(fn, "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	sized := sizedDestinations(pass, fn)
	exempt := exemptCalls(pass, fn.Body)

	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if !exempt[n] && !insideExempt(stack, exempt) {
				checkHotCall(pass, n, sized)
				checkHotCallee(pass, n, insideLoop(stack[:len(stack)-1]))
			}
		case *ast.FuncLit:
			if insideLoop(stack[:len(stack)-1]) && capturesVariables(pass, fn, n) {
				pass.Reportf(n.Pos(), "variable-capturing closure inside a loop allocates per iteration; hoist it above the loop")
			}
		}
		return true
	})
}

// exemptCalls collects the cold-path calls: fmt calls appearing as immediate
// return-statement arguments (error construction for a failing superstep)
// and panic calls (programming-error aborts). Exemption covers the whole
// argument subtree.
func exemptCalls(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	return coldCalls(pass.Info, body)
}

// insideExempt reports whether the innermost enclosing call on the ancestor
// stack is exempt (so boxing inside fmt-in-return or panic args is not
// double-reported).
func insideExempt(stack []ast.Node, exempt map[*ast.CallExpr]bool) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok && exempt[call] {
			return true
		}
	}
	return false
}

func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

func checkHotCall(pass *Pass, call *ast.CallExpr, sized map[string]bool) {
	if isFmtCall(pass, call) {
		pass.Reportf(call.Pos(), "call into package fmt allocates in hot path (only allowed as a direct return argument)")
		return
	}
	switch calleeName(call) {
	case "make":
		checkHotMake(pass, call)
		return
	case "append":
		checkHotAppend(pass, call, sized)
		return
	}
	checkBoxing(pass, call)
}

// checkHotCallee consults the module dataflow summary of a called function:
// hot code must not call into allocation, even when the allocation lives in
// another package. Two sanctions apply: a //flash:hotpath callee is already
// checked on its own terms, and a //flash:amortized callee declares its
// allocation is paid once per superstep (or once per block miss), not per
// element — the marker is the reviewed waiver for orchestration helpers like
// parfor and the out-of-core decode path.
func checkHotCallee(pass *Pass, call *ast.CallExpr, inLoop bool) {
	callee := pass.Mod.CalleeOf(pass.Info, call)
	if callee == nil || HasMarker(callee.Decl, "hotpath") || HasMarker(callee.Decl, "amortized") {
		return
	}
	switch {
	case callee.Sum.AllocatesInLoop:
		pass.Reportf(call.Pos(), "call to %s allocates in a loop (per its dataflow summary); pool or pre-size in the callee, or hoist the work off the hot path", callee.Name())
	case inLoop && callee.Sum.AllocatesEver:
		pass.Reportf(call.Pos(), "call to allocating %s inside a hot loop allocates per iteration; hoist it above the loop", callee.Name())
	}
}

func isFmtCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "fmt"
}

func calleeName(call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkHotMake(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || !tv.IsType() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map, *types.Chan:
		if len(call.Args) < 2 {
			pass.Reportf(call.Pos(), "unsized make in hot path: pass a capacity hint")
		}
	case *types.Slice:
		if len(call.Args) == 2 && isZeroLiteral(call.Args[1]) {
			pass.Reportf(call.Pos(), "unsized make in hot path: make([]T, 0) grows on append; pass an explicit capacity")
		}
	}
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

func checkHotAppend(pass *Pass, call *ast.CallExpr, sized map[string]bool) {
	if len(call.Args) == 0 {
		return
	}
	if !isSizedExpr(call.Args[0], sized) {
		pass.Reportf(call.Pos(), "append to possibly-unsized %s in hot path: pre-size with make(len, cap), draw from the frame pool, or reuse with x[:0]",
			types.ExprString(call.Args[0]))
	}
}

// sizedDestinations computes, to a fixed point, the set of destination keys
// (idents and field selectors by source text) that are known capacity-carrying
// slices inside fn: parameters, results of calls (pool draws, encoders),
// make with an explicit capacity, and chains thereof.
func sizedDestinations(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	sized := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				sized[name.Name] = true
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFields(lit.Type.Params)
		}
		return true
	})

	// Gather simple assignments lhs = rhs (including :=).
	type assign struct {
		lhs string
		rhs ast.Expr
	}
	var assigns []assign
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					assigns = append(assigns, assign{types.ExprString(n.Lhs[i]), n.Rhs[i]})
				}
			} else if len(n.Rhs) == 1 {
				for i := range n.Lhs {
					assigns = append(assigns, assign{types.ExprString(n.Lhs[i]), n.Rhs[0]})
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					assigns = append(assigns, assign{name.Name, n.Values[i]})
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if !sized[a.lhs] && sizedRHS(a.rhs, sized) {
				sized[a.lhs] = true
				changed = true
			}
		}
	}
	return sized
}

// sizedRHS reports whether assigning expr confers known capacity.
func sizedRHS(expr ast.Expr, sized map[string]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		switch calleeName(e) {
		case "make":
			// Sized only with an explicit capacity argument or a non-zero
			// length; make([]T, 0) is the growth-prone pattern.
			return len(e.Args) >= 3 || (len(e.Args) == 2 && !isZeroLiteral(e.Args[1]))
		case "append":
			return len(e.Args) > 0 && isSizedExpr(e.Args[0], sized)
		}
		return true // any other call: the callee owns the capacity contract
	case *ast.SliceExpr, *ast.Ident, *ast.SelectorExpr:
		return isSizedExpr(expr, sized)
	}
	return false
}

// isSizedExpr reports whether an append destination expression carries
// capacity: the x[:0] reuse idiom, a slice of a sized base, or a tracked
// sized ident/selector.
func isSizedExpr(expr ast.Expr, sized map[string]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SliceExpr:
		if e.Low == nil && e.High != nil && isZeroLiteral(e.High) {
			return true // x[:0] reuse
		}
		return isSizedExpr(e.X, sized)
	case *ast.Ident, *ast.SelectorExpr:
		return sized[types.ExprString(e)]
	case *ast.CallExpr:
		return true // appending to a call result: capacity owned by callee
	}
	return false
}

// checkBoxing flags implicit concrete→interface conversions in call
// arguments: each one heap-allocates unless the value is pointer-shaped or a
// compile-time constant.
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing when T is an interface.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			reportBoxedArg(pass, call.Args[0])
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if _, ellipsis := arg.(*ast.Ellipsis); ellipsis {
				continue
			}
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			reportBoxedArg(pass, arg)
		}
	}
}

func reportBoxedArg(pass *Pass, arg ast.Expr) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constants box into static interface data
	}
	at := tv.Type
	if types.IsInterface(at) || isUntypedNil(at) || pointerShaped(at) {
		return
	}
	pass.Reportf(arg.Pos(), "implicit interface boxing of %s allocates in hot path", at.String())
}

func isUntypedNil(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit an interface data word
// without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

// capturesVariables reports whether lit references a local variable declared
// outside the literal but inside outer (a closure environment allocation).
func capturesVariables(pass *Pass, outer *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos == token.NoPos {
			return true
		}
		declaredInLit := pos >= lit.Pos() && pos < lit.End()
		declaredInOuter := pos >= outer.Pos() && pos < outer.End()
		if !declaredInLit && declaredInOuter {
			captures = true
		}
		return true
	})
	return captures
}
