package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Options tune a table regeneration run.
type Options struct {
	Scale      int           // dataset scale factor (default 1)
	Budget     time.Duration // per-cell wall budget (default 60s)
	Run        RunConfig
	Datasets   []string // abbreviations to include (default all)
	ReuseCache bool     // cache built graphs across cells (default true behavior)
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Budget == 0 {
		o.Budget = 60 * time.Second
	}
	o.Run.fill()
}

func (o *Options) datasetList() []Dataset {
	if len(o.Datasets) == 0 {
		return Datasets
	}
	var out []Dataset
	for _, abbr := range o.Datasets {
		if d, ok := DatasetByAbbr(abbr); ok {
			out = append(out, d)
		}
	}
	return out
}

// Grid holds measurements indexed by app, dataset abbreviation and system.
type Grid struct {
	Apps     []App
	Datasets []Dataset
	Cells    map[App]map[string]map[System]Cell
}

// RunGrid measures the given apps across datasets and systems.
func RunGrid(apps []App, opt Options) *Grid {
	opt.fill()
	ds := opt.datasetList()
	grid := &Grid{Apps: apps, Datasets: ds, Cells: map[App]map[string]map[System]Cell{}}
	for _, d := range ds {
		g := d.Build(opt.Scale)
		for _, app := range apps {
			if grid.Cells[app] == nil {
				grid.Cells[app] = map[string]map[System]Cell{}
			}
			grid.Cells[app][d.Abbr] = map[System]Cell{}
			for _, sys := range Systems {
				if !Supports(sys, app) {
					grid.Cells[app][d.Abbr][sys] = Unsupported
					continue
				}
				sys, app, g := sys, app, g
				grid.Cells[app][d.Abbr][sys] = timedCell(opt.Budget, func() error {
					return RunApp(sys, app, g, opt.Run)
				})
			}
		}
	}
	return grid
}

// TableV regenerates the paper's Table V (first eight applications).
func TableV(opt Options) *Grid { return RunGrid(TableVApps, opt) }

// TableVI regenerates the paper's Table VI (six advanced applications,
// FLASH vs the single framework that can express each one).
func TableVI(opt Options) *Grid { return RunGrid(TableVIApps, opt) }

// Print writes the grid in the paper's layout: one block per application,
// one row per dataset, one column per system.
func (g *Grid) Print(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "App\tData")
	for _, s := range Systems {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, app := range g.Apps {
		for _, d := range g.Datasets {
			fmt.Fprintf(tw, "%s\t%s", app, d.Abbr)
			for _, s := range Systems {
				fmt.Fprintf(tw, "\t%s", g.Cells[app][d.Abbr][s])
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// Fig1 derives the paper's heat map from a grid: per (app, dataset), each
// system's slowdown relative to the fastest system on that cell.
func Fig1(g *Grid, w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "App\tData")
	for _, s := range Systems {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, app := range g.Apps {
		for _, d := range g.Datasets {
			best := 0.0
			for _, s := range Systems {
				c := g.Cells[app][d.Abbr][s]
				if c.Status == "" && (best == 0 || c.Seconds < best) {
					best = c.Seconds
				}
			}
			fmt.Fprintf(tw, "%s\t%s", app, d.Abbr)
			for _, s := range Systems {
				c := g.Cells[app][d.Abbr][s]
				switch {
				case c.Status != "":
					fmt.Fprintf(tw, "\tfailed")
				case best == 0:
					fmt.Fprintf(tw, "\t1.0x")
				default:
					fmt.Fprintf(tw, "\t%.1fx", c.Seconds/best)
				}
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// WinRate summarizes a grid the way §V-B does: the fraction of cells where
// FLASH is fastest, and the fraction where it is within 2x of the fastest.
func WinRate(g *Grid) (wins, within2x float64) {
	return winRateAgainst(g, Systems)
}

// WinRateDistributed compares FLASH against the distributed frameworks only
// (Pregel+, PowerGraph). At in-process benchmark scale the shared-memory
// systems pay no communication at all, which inverts the paper's
// cluster-scale comparison against them; the distributed-only rate is the
// scale-robust part of the paper's claim (see EXPERIMENTS.md).
func WinRateDistributed(g *Grid) (wins, within2x float64) {
	return winRateAgainst(g, []System{Pregel, PowerG, Flash})
}

func winRateAgainst(g *Grid, systems []System) (wins, within2x float64) {
	total, won, close := 0, 0, 0
	for _, app := range g.Apps {
		for _, d := range g.Datasets {
			fc := g.Cells[app][d.Abbr][Flash]
			if fc.Status != "" {
				continue
			}
			best := fc.Seconds
			othersRan := false
			for _, s := range systems {
				if s == Flash {
					continue
				}
				c := g.Cells[app][d.Abbr][s]
				if c.Status == "" {
					othersRan = true
					if c.Seconds < best {
						best = c.Seconds
					}
				}
			}
			if !othersRan {
				continue
			}
			total++
			if fc.Seconds <= best {
				won++
			}
			if fc.Seconds <= 2*best {
				close++
			}
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(won) / float64(total), float64(close) / float64(total)
}

// TableIII prints the dataset characteristics table.
func TableIII(w io.Writer, scale int) {
	if scale == 0 {
		scale = 1
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Abbr\tDataset\t|V|\t|E|\tMaxDeg\tDomain")
	for _, d := range Datasets {
		g := d.Build(scale)
		_, maxd := g.MaxOutDegree()
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\n",
			d.Abbr, d.Name, g.NumVertices(), g.NumEdges(), maxd, d.Domain)
	}
	tw.Flush()
}
