// Fixture for the poolescape analyzer: a Drain handler's frame argument is
// recycled into the pool when the handler returns, so every retained alias
// is a use-after-recycle.
package poolescape

import "poolescape/pooldep"

type Transport struct{}

func (t *Transport) Drain(to int, h func(from int, data []byte)) error { return nil }

func consume(b []byte) {}
func decode(b []byte)  {}
func keep(b []byte)    {}

var stash [][]byte
var sink []byte
var frames = make(chan []byte, 4)

type holder struct{ buf []byte }

func bad(tr *Transport, h *holder) {
	var local []byte
	err := tr.Drain(0, func(from int, data []byte) {
		sink = data                 // want `stored in sink`
		stash = append(stash, data) // want `stored in stash`
		frames <- data              // want `channel send`
		d := data[4:]
		local = d        // want `stored in local`
		h.buf = data     // want `stored through h.buf`
		go consume(data) // want `handed to a goroutine`
		defer keep(data) // want `captured by defer`
	})
	_ = err
	_ = local
}

func leakClosure(tr *Transport) func() []byte {
	var f func() []byte
	err := tr.Drain(0, func(from int, data []byte) {
		f = func() []byte {
			return data // want `escapes its Drain handler via return`
		}
	})
	_ = err
	return f
}

func good(tr *Transport) int {
	total := 0
	err := tr.Drain(0, func(from int, data []byte) {
		cp := append([]byte(nil), data...) // no diagnostic: copies the bytes out
		keep(cp)
		total += len(data) // no diagnostic: scalar derived from the frame
		decode(data)       // no diagnostic: synchronous use inside the handler
		head := data[:2]
		decode(head) // no diagnostic: alias used synchronously
	})
	_ = err
	return total
}

// Cross-package retention: pooldep.Stash appends the frame to package state
// in another package. Only the callee's summary (RetainsParam) makes the
// call site a sink; v1 silently trusted every call it could not see into.
func crossPackage(tr *Transport) int {
	total := 0
	err := tr.Drain(0, func(from int, data []byte) {
		pooldep.Stash(data)             // want `passed to Stash, which retains it past the handler`
		total += pooldep.Checksum(data) // no diagnostic: read-only callee, pinned
	})
	_ = err
	return total
}
