package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flash/internal/serve"
)

// Config shapes one cluster job: which binary to spawn, the fleet size, the
// work to run, and the supervision budgets.
type Config struct {
	BinPath string          // path to the flashd binary (spawned as `flashd worker ...`)
	Workers int             // fleet size, >= 2
	Graph   serve.GraphSpec // deterministic spec every process rebuilds identically
	Algo    string          // must be serve.ClusterSafe
	Params  serve.JobParams // algorithm knobs; topology fields are ignored

	StoreDir        string // durable worker-store root ("" disables checkpoint/resume)
	CheckpointEvery int    // superstep cadence passed to workers (0 = off)

	MaxRestarts    int           // fleet respawn budget after retryable failures
	StartTimeout   time.Duration // registration deadline per epoch (default 30s)
	DrainTimeout   time.Duration // worker drain budget (default 5s)
	HeartbeatEvery time.Duration // worker engine heartbeat interval (0 = engine default)

	Chaos  *ChaosPlan // optional test-only fault injection
	Stderr io.Writer  // workers' stderr sink (default os.Stderr)
}

// Coordinator spawns and supervises a fleet of `flashd worker` processes.
// One Coordinator runs one job: Run blocks until the job produces a verified
// result, exhausts its restart budget, or hits a permanent failure.
type Coordinator struct {
	cfg        Config
	stopping   atomic.Bool
	chaosFired atomic.Bool
	restarts   atomic.Int32

	mu    sync.Mutex
	procs []*workerProc
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.BinPath == "" {
		return nil, fmt.Errorf("cluster: BinPath required")
	}
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("cluster: Workers must be >= 2, got %d", cfg.Workers)
	}
	if !serve.ClusterSafe(cfg.Algo) {
		return nil, fmt.Errorf("cluster: algo %q is not cluster-safe (allowed: %v)", cfg.Algo, serve.ClusterAlgos())
	}
	if cfg.Chaos != nil {
		if cfg.Chaos.Worker < 0 || cfg.Chaos.Worker >= cfg.Workers {
			return nil, fmt.Errorf("cluster: chaos victim %d out of range [0,%d)", cfg.Chaos.Worker, cfg.Workers)
		}
		if cfg.Chaos.AwaitSeq > 0 && cfg.StoreDir == "" {
			return nil, fmt.Errorf("cluster: chaos AwaitSeq needs a StoreDir to watch")
		}
	}
	if cfg.StartTimeout <= 0 {
		cfg.StartTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	return &Coordinator{cfg: cfg}, nil
}

// Restarts reports how many fleet respawns have happened so far.
func (c *Coordinator) Restarts() int { return int(c.restarts.Load()) }

// Stop requests a graceful shutdown: every live worker gets SIGTERM and one
// drain budget to finish; Run then returns a WorkerError with the "drained"
// verdict (or the job's result, if it won the race).
func (c *Coordinator) Stop() {
	c.stopping.Store(true)
	c.mu.Lock()
	procs := c.procs
	c.mu.Unlock()
	for _, p := range procs {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
}

// Run executes the job to completion: spawn the fleet at epoch 1, supervise,
// and on a retryable loss (SIGKILL, stall, dead peer) respawn everything at
// the next epoch — resuming from the newest checkpoint sequence every
// surviving store holds — until the restart budget runs out. The returned
// payload is the JSON result, verified byte-identical across all workers.
func (c *Coordinator) Run() ([]byte, error) {
	epoch := uint32(1)
	for {
		payload, failure := c.runEpoch(epoch)
		if failure == nil {
			return payload, nil
		}
		if c.stopping.Load() || !retryableVerdict(failure.Verdict) {
			return nil, failure
		}
		n := c.restarts.Add(1)
		if int(n) > c.cfg.MaxRestarts {
			return nil, failure
		}
		// Exponential backoff before the respawn, capped: a crash loop must
		// not hammer the machine, but a one-shot chaos kill should recover
		// fast.
		backoff := 50 * time.Millisecond << uint(n-1)
		if backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
		time.Sleep(backoff)
		epoch++
	}
}

// workerProc is one spawned worker process plus its control streams.
type workerProc struct {
	id      int
	cmd     *exec.Cmd
	stdin   io.WriteCloser
	stdinMu sync.Mutex
}

// send writes one control message to the worker's stdin.
func (p *workerProc) send(m *Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	p.stdinMu.Lock()
	defer p.stdinMu.Unlock()
	_, err = p.stdin.Write(append(b, '\n'))
	return err
}

// event is one supervision observation from a worker.
type event struct {
	worker   int
	msg      *Message // register/result/fail line, nil for process events
	exited   bool
	exitCode int // -1 when killed by signal
	signaled bool
	stalled  bool // /proc state T: SIGSTOPed but not dead
}

// runEpoch spawns the whole fleet once and supervises it to a terminal
// outcome: (payload, nil) on verified success, (nil, failure) otherwise.
func (c *Coordinator) runEpoch(epoch uint32) ([]byte, *WorkerError) {
	m := c.cfg.Workers
	graphJSON, err := json.Marshal(c.cfg.Graph)
	if err != nil {
		return nil, &WorkerError{Worker: -1, ExitCode: -1, Verdict: VerdictConfig, Err: err}
	}
	paramsJSON, err := json.Marshal(c.cfg.Params)
	if err != nil {
		return nil, &WorkerError{Worker: -1, ExitCode: -1, Verdict: VerdictConfig, Err: err}
	}

	events := make(chan event, 4*m)
	procs := make([]*workerProc, m)
	for i := 0; i < m; i++ {
		args := []string{"worker",
			"-worker", strconv.Itoa(i),
			"-workers", strconv.Itoa(m),
			"-epoch", strconv.FormatUint(uint64(epoch), 10),
			"-graph", string(graphJSON),
			"-algo", c.cfg.Algo,
			"-params", string(paramsJSON),
			"-drain-timeout", c.cfg.DrainTimeout.String(),
		}
		if c.cfg.StoreDir != "" {
			args = append(args, "-store", c.cfg.StoreDir)
		}
		if c.cfg.CheckpointEvery > 0 {
			args = append(args, "-checkpoint-every", strconv.Itoa(c.cfg.CheckpointEvery))
		}
		if c.cfg.HeartbeatEvery > 0 {
			args = append(args, "-heartbeat-every", c.cfg.HeartbeatEvery.String())
		}
		cmd := exec.Command(c.cfg.BinPath, args...)
		cmd.Stderr = c.cfg.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			c.killAll(procs[:i])
			return nil, &WorkerError{Worker: i, ExitCode: -1, Verdict: VerdictProtocol, Err: err}
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			c.killAll(procs[:i])
			return nil, &WorkerError{Worker: i, ExitCode: -1, Verdict: VerdictProtocol, Err: err}
		}
		if err := cmd.Start(); err != nil {
			c.killAll(procs[:i])
			return nil, &WorkerError{Worker: i, ExitCode: -1, Verdict: VerdictProtocol, Err: err}
		}
		p := &workerProc{id: i, cmd: cmd, stdin: stdin}
		procs[i] = p
		go readWorker(p, stdout, events)
	}
	c.mu.Lock()
	c.procs = procs
	c.mu.Unlock()

	done := make(chan struct{})
	defer close(done)
	if runtime.GOOS == "linux" {
		go c.monitorStalls(procs, events, done)
	}

	// exitsSeen counts every process exit observed so far (clean or not), so
	// abort knows how many reap events are still owed.
	exitsSeen := 0

	// Phase 1: registration. Every worker reports its mesh address and the
	// newest checkpoint sequence its store holds.
	addrs := make([]string, m)
	latest := make([]uint64, m)
	registered := 0
	deadline := time.NewTimer(c.cfg.StartTimeout)
	defer deadline.Stop()
	for registered < m {
		select {
		case ev := <-events:
			if ev.exited {
				exitsSeen++
			}
			if ev.msg != nil && ev.msg.Type == MsgRegister {
				if ev.msg.Addr == "" {
					return nil, c.abort(procs, events, m-exitsSeen, &WorkerError{Worker: ev.worker, ExitCode: -1, Verdict: VerdictProtocol,
						Err: fmt.Errorf("register without mesh address")})
				}
				addrs[ev.worker] = ev.msg.Addr
				latest[ev.worker] = ev.msg.LatestSeq
				registered++
				continue
			}
			if fe := c.classify(ev); fe != nil {
				return nil, c.abort(procs, events, m-exitsSeen, fe)
			}
		case <-deadline.C:
			return nil, c.abort(procs, events, m-exitsSeen, &WorkerError{Worker: -1, ExitCode: -1, Verdict: VerdictRegisterTimeout,
				Err: fmt.Errorf("only %d/%d workers registered within %v", registered, m, c.cfg.StartTimeout)})
		}
	}

	// Resume point: the newest sequence EVERY store holds. Stores keep their
	// last two images and the fleet's cadence keeps them within one sequence
	// of each other, so the minimum is durable everywhere.
	resumeSeq := uint64(0)
	if c.cfg.StoreDir != "" {
		resumeSeq = latest[0]
		for _, s := range latest[1:] {
			if s < resumeSeq {
				resumeSeq = s
			}
		}
	}
	start := &Message{Type: MsgStart, Peers: addrs, ResumeSeq: resumeSeq}
	for _, p := range procs {
		if err := p.send(start); err != nil {
			return nil, c.abort(procs, events, m-exitsSeen, &WorkerError{Worker: p.id, ExitCode: -1, Verdict: VerdictProtocol, Err: err})
		}
	}

	if c.cfg.Chaos != nil && !c.chaosFired.Load() {
		go c.runChaos(procs[c.cfg.Chaos.Worker], done)
	}

	// Phase 2: supervise to completion. Success needs all m results AND all
	// m clean exits; the first abnormal observation aborts the epoch.
	results := make([][]byte, m)
	failMsgs := make([]string, m)
	cleanExits := 0
	for cleanExits < m {
		ev := <-events
		if ev.exited {
			exitsSeen++
		}
		switch {
		case ev.msg != nil && ev.msg.Type == MsgResult:
			results[ev.worker] = ev.msg.Result
			continue
		case ev.msg != nil && ev.msg.Type == MsgFail:
			failMsgs[ev.worker] = ev.msg.Error
			continue
		case ev.msg != nil:
			continue
		case ev.exited && !ev.signaled && ev.exitCode == ExitOK:
			cleanExits++
			continue
		}
		fe := c.classify(ev)
		if fe == nil {
			fe = &WorkerError{Worker: ev.worker, ExitCode: ev.exitCode, Verdict: VerdictKilled}
		}
		if failMsgs[ev.worker] != "" && fe.Err == nil {
			fe.Err = fmt.Errorf("%s", failMsgs[ev.worker])
		}
		return nil, c.abort(procs, events, m-exitsSeen, fe)
	}
	for i, r := range results {
		if r == nil {
			return nil, c.abort(procs, events, m-exitsSeen, &WorkerError{Worker: i, ExitCode: ExitOK, Verdict: VerdictProtocol,
				Err: fmt.Errorf("clean exit without a result payload")})
		}
		if !bytes.Equal(r, results[0]) {
			return nil, &WorkerError{Worker: i, ExitCode: ExitOK, Verdict: VerdictDiverged,
				Err: fmt.Errorf("result differs from worker 0 (%d vs %d bytes)", len(r), len(results[0]))}
		}
	}
	return results[0], nil
}

// classify turns an abnormal observation into a verdict, or nil for events
// that are not failures.
func (c *Coordinator) classify(ev event) *WorkerError {
	switch {
	case ev.stalled:
		return &WorkerError{Worker: ev.worker, ExitCode: -1, Verdict: VerdictStalled}
	case ev.exited && ev.signaled:
		return &WorkerError{Worker: ev.worker, ExitCode: -1, Verdict: VerdictKilled}
	case ev.exited && ev.exitCode != ExitOK:
		return &WorkerError{Worker: ev.worker, ExitCode: ev.exitCode, Verdict: verdictForExit(ev.exitCode)}
	}
	return nil
}

// abort SIGKILLs the whole fleet and reaps every not-yet-exited process
// before returning the failure, so the next epoch never races a half-dead
// predecessor for sockets or store files. owed is how many exit events are
// still outstanding (total spawned minus exits already observed).
func (c *Coordinator) abort(procs []*workerProc, events chan event, owed int, fe *WorkerError) *WorkerError {
	c.killAll(procs)
	reaped := 0
	timeout := time.After(10 * time.Second)
	for reaped < owed {
		select {
		case ev := <-events:
			if ev.exited {
				reaped++
			}
		case <-timeout:
			return fe
		}
	}
	return fe
}

// killAll SIGKILLs every spawned process. SIGKILL also reaps SIGSTOPed
// victims: a stopped process cannot block a kill.
func (c *Coordinator) killAll(procs []*workerProc) {
	for _, p := range procs {
		if p != nil && p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
	}
}

// readWorker owns one worker's stdout: it forwards control lines as events,
// then reaps the process and reports its exit.
func readWorker(p *workerProc, stdout io.Reader, events chan<- event) {
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 64*1024), maxControlLine)
	for sc.Scan() {
		m, err := ParseMessage(sc.Bytes())
		if err != nil {
			continue // garbage on stdout is not fatal; the exit code is the truth
		}
		events <- event{worker: p.id, msg: m}
	}
	err := p.cmd.Wait()
	ev := event{worker: p.id, exited: true, exitCode: 0}
	if err != nil {
		var xe *exec.ExitError
		if ok := errors.As(err, &xe); ok {
			ev.exitCode = xe.ExitCode()
			if ws, ok := xe.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				ev.signaled = true
				ev.exitCode = -1
			}
		} else {
			ev.exitCode = -1
		}
	}
	events <- ev
}

// monitorStalls watches /proc/<pid>/stat for the 'T' (stopped) state — the
// signature of a SIGSTOPed worker, which never exits and never heartbeats,
// so the process table is the only place the truth is visible.
func (c *Coordinator) monitorStalls(procs []*workerProc, events chan<- event, done <-chan struct{}) {
	reported := make([]bool, len(procs))
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			for i, p := range procs {
				if p == nil || reported[i] || p.cmd.Process == nil {
					continue
				}
				if procState(p.cmd.Process.Pid) == 'T' {
					reported[i] = true
					select {
					case events <- event{worker: i, stalled: true}:
					case <-done:
						return
					}
				}
			}
		}
	}
}

// procState reads the single-character process state from /proc/<pid>/stat
// (field 3, after the parenthesized comm). Returns 0 when unreadable.
func procState(pid int) byte {
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return 0
	}
	i := bytes.LastIndexByte(b, ')')
	if i < 0 || i+2 >= len(b) {
		return 0
	}
	return b[i+2]
}
