module flash

go 1.24
