package algo

import (
	"flash"
	"flash/graph"
)

type sccProps struct {
	SCC int32 // assigned component id, -1 while unassigned
	FID int32 // forward color: min id that reaches this vertex
}

// SCC computes strongly connected components of a directed graph with the
// parallel coloring algorithm of Orzan (paper Algorithm 18): each outer
// round (1) colors the unassigned vertices by the minimum id that can reach
// them along forward edges, then (2) walks backwards from each color root
// over reverse edges, restricted to vertices of the same color, assigning
// them to the root's component. Returns the component id (the root's id)
// per vertex.
func SCC(g *graph.Graph, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[sccProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	a := e.VertexMap(e.All(), nil, func(v flash.Vertex[sccProps]) sccProps {
		return sccProps{SCC: none}
	})
	for a.Size() != 0 {
		// Phase 1: forward min-id coloring within the unassigned subgraph.
		b := e.VertexMap(a, nil, func(v flash.Vertex[sccProps]) sccProps {
			nv := *v.Val
			nv.FID = int32(v.ID)
			return nv
		})
		for b.Size() != 0 {
			b = e.EdgeMap(b, e.JoinEU(e.E(), a),
				func(s, d flash.Vertex[sccProps]) bool { return s.Val.FID < d.Val.FID },
				func(s, d flash.Vertex[sccProps]) sccProps {
					nv := *d.Val
					if s.Val.FID < nv.FID {
						nv.FID = s.Val.FID
					}
					return nv
				},
				func(d flash.Vertex[sccProps]) bool { return d.Val.SCC == none },
				func(t, cur sccProps) sccProps {
					if t.FID < cur.FID {
						cur.FID = t.FID
					}
					return cur
				})
		}
		// Phase 2: color roots claim their component via reverse edges.
		b = e.VertexMap(a,
			func(v flash.Vertex[sccProps]) bool { return v.Val.FID == int32(v.ID) },
			func(v flash.Vertex[sccProps]) sccProps {
				nv := *v.Val
				nv.SCC = int32(v.ID)
				return nv
			})
		for b.Size() != 0 {
			b = e.EdgeMap(b, e.JoinEU(flash.Reverse(e.E()), a),
				func(s, d flash.Vertex[sccProps]) bool { return s.Val.SCC == d.Val.FID },
				func(s, d flash.Vertex[sccProps]) sccProps {
					nv := *d.Val
					nv.SCC = nv.FID
					return nv
				},
				func(d flash.Vertex[sccProps]) bool { return d.Val.SCC == none },
				func(t, cur sccProps) sccProps { return t })
		}
		a = e.VertexMap(e.All(), func(v flash.Vertex[sccProps]) bool { return v.Val.SCC == none }, nil)
	}

	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *sccProps) { out[v] = val.SCC })
	return out, nil
}
