package bench

import (
	"fmt"

	"flash"
	"flash/algo"
	"flash/baseline/gas"
	"flash/baseline/gemini"
	"flash/baseline/ligra"
	"flash/baseline/pregel"
	"flash/graph"
)

// System names a framework under comparison; PowerG is the GAS engine.
type System string

// The five systems of Tables I and V.
const (
	Flash   System = "FLASH"
	Pregel  System = "Pregel+"
	PowerG  System = "PowerG."
	Gemini  System = "Gemini"
	LigraSM System = "Ligra"
)

// Systems lists the comparison order used by every table.
var Systems = []System{Pregel, PowerG, Gemini, LigraSM, Flash}

// App names one benchmark application.
type App string

// Table V applications (first eight) and Table VI applications (last six).
const (
	AppCC  App = "CC"
	AppBFS App = "BFS"
	AppBC  App = "BC"
	AppMIS App = "MIS"
	AppMM  App = "MM"
	AppKC  App = "KC"
	AppTC  App = "TC"
	AppGC  App = "GC"
	AppSCC App = "SCC"
	AppBCC App = "BCC"
	AppLPA App = "LPA"
	AppMSF App = "MSF"
	AppRC  App = "RC"
	AppCL  App = "CL"
)

// TableVApps are the eight applications of Table V.
var TableVApps = []App{AppCC, AppBFS, AppBC, AppMIS, AppMM, AppKC, AppTC, AppGC}

// TableVIApps are the six advanced applications of Table VI.
var TableVIApps = []App{AppSCC, AppBCC, AppLPA, AppMSF, AppRC, AppCL}

// RunConfig fixes the execution parameters of one comparison run.
type RunConfig struct {
	Workers int // distributed systems: workers; shared-memory: threads
	Threads int // threads per worker for FLASH
	LPAIter int // LPA rounds (default 10)
	CLK     int // clique size for CL (default 4)
}

func (rc *RunConfig) fill() {
	if rc.Workers == 0 {
		rc.Workers = 4
	}
	if rc.Threads == 0 {
		rc.Threads = 1
	}
	if rc.LPAIter == 0 {
		rc.LPAIter = 10
	}
	if rc.CLK == 0 {
		rc.CLK = 4
	}
}

// RunApp executes one (system, app) pair on g and returns an error for
// failures; inexpressible combinations return errUnsupported.
func RunApp(sys System, app App, g *graph.Graph, rc RunConfig) error {
	rc.fill()
	fOpts := []flash.Option{flash.WithWorkers(rc.Workers), flash.WithThreads(rc.Threads)}
	pCfg := pregel.Config{Workers: rc.Workers}
	gCfg := gas.Config{Workers: rc.Workers}
	smThreads := rc.Workers * rc.Threads // shared-memory systems use one node's cores
	gemCfg := gemini.Config{Threads: smThreads}
	ligCfg := ligra.Config{Threads: smThreads}

	switch sys {
	case Flash:
		switch app {
		case AppCC:
			// The paper runs the better CC variant per graph: label
			// propagation on low-diameter graphs, the optimized
			// hook-and-jump algorithm on large-diameter road networks
			// (avg degree is a reliable proxy for the regime).
			if float64(g.NumEdges())/float64(g.NumVertices()) < 5 {
				_, err := algo.CCOpt(g, fOpts...)
				return err
			}
			_, err := algo.CC(g, fOpts...)
			return err
		case AppBFS:
			_, err := algo.BFS(g, 0, fOpts...)
			return err
		case AppBC:
			_, err := algo.BC(g, 0, fOpts...)
			return err
		case AppMIS:
			_, err := algo.MIS(g, fOpts...)
			return err
		case AppMM:
			_, err := algo.MMOpt(g, fOpts...) // MM-opt, Fig. 4(a)
			return err
		case AppKC:
			_, err := algo.KCOpt(g, fOpts...)
			return err
		case AppTC:
			_, err := algo.TC(g, fOpts...)
			return err
		case AppGC:
			_, err := algo.GC(g, fOpts...)
			return err
		case AppSCC:
			_, err := algo.SCC(asDirected(g), fOpts...)
			return err
		case AppBCC:
			_, err := algo.BCC(g, fOpts...)
			return err
		case AppLPA:
			_, err := algo.LPA(g, rc.LPAIter, fOpts...)
			return err
		case AppMSF:
			_, err := algo.MSF(weighted(g), fOpts...)
			return err
		case AppRC:
			_, err := algo.RC(g, fOpts...)
			return err
		case AppCL:
			_, err := algo.CL(g, rc.CLK, fOpts...)
			return err
		}
	case Pregel:
		switch app {
		case AppCC:
			_, err := pregel.CC(g, pCfg)
			return err
		case AppBFS:
			_, err := pregel.BFS(g, 0, pCfg)
			return err
		case AppBC:
			_, err := pregel.BC(g, 0, pCfg)
			return err
		case AppMIS:
			_, err := pregel.MIS(g, pCfg)
			return err
		case AppMM:
			_, err := pregel.MM(g, pCfg)
			return err
		case AppKC:
			_, err := pregel.KC(g, pCfg)
			return err
		case AppTC:
			_, err := pregel.TC(g, pCfg)
			return err
		case AppGC:
			_, err := pregel.GC(g, pCfg)
			return err
		case AppSCC:
			_, err := pregel.SCC(asDirected(g), pCfg)
			return err
		case AppBCC:
			_, err := pregel.BCC(g, pCfg)
			return err
		case AppMSF:
			_, _, err := pregel.MSF(weighted(g), pCfg)
			return err
		}
	case PowerG:
		switch app {
		case AppCC:
			_, err := gas.CC(g, gCfg)
			return err
		case AppBFS:
			_, err := gas.BFS(g, 0, gCfg)
			return err
		case AppBC:
			_, err := gas.BC(g, 0, gCfg)
			return err
		case AppMIS:
			_, err := gas.MIS(g, gCfg)
			return err
		case AppMM:
			_, err := gas.MM(g, gCfg)
			return err
		case AppKC:
			_, err := gas.KC(g, gCfg)
			return err
		case AppTC:
			_, err := gas.TC(g, gCfg)
			return err
		case AppGC:
			_, err := gas.GC(g, gCfg)
			return err
		case AppLPA:
			_, err := gas.LPA(g, rc.LPAIter, gCfg)
			return err
		}
	case Gemini:
		switch app {
		case AppCC:
			gemini.CC(g, gemCfg)
			return nil
		case AppBFS:
			gemini.BFS(g, 0, gemCfg)
			return nil
		case AppBC:
			gemini.BC(g, 0, gemCfg)
			return nil
		case AppMIS:
			gemini.MIS(g, gemCfg)
			return nil
		case AppMM:
			gemini.MM(g, gemCfg)
			return nil
		}
	case LigraSM:
		switch app {
		case AppCC:
			ligra.CC(g, ligCfg)
			return nil
		case AppBFS:
			ligra.BFS(g, 0, ligCfg)
			return nil
		case AppBC:
			ligra.BC(g, 0, ligCfg)
			return nil
		case AppMIS:
			ligra.MIS(g, ligCfg)
			return nil
		case AppMM:
			ligra.MM(g, ligCfg)
			return nil
		case AppKC:
			ligra.KC(g, ligCfg)
			return nil
		case AppTC:
			ligra.TC(g, ligCfg)
			return nil
		}
	}
	return errUnsupported
}

var errUnsupported = fmt.Errorf("bench: combination not expressible")

// Supports reports whether sys can express app, mirroring the paper's
// feasibility matrix.
func Supports(sys System, app App) bool {
	support := map[System]map[App]bool{
		Flash: {AppCC: true, AppBFS: true, AppBC: true, AppMIS: true, AppMM: true,
			AppKC: true, AppTC: true, AppGC: true, AppSCC: true, AppBCC: true,
			AppLPA: true, AppMSF: true, AppRC: true, AppCL: true},
		Pregel: {AppCC: true, AppBFS: true, AppBC: true, AppMIS: true, AppMM: true,
			AppKC: true, AppTC: true, AppGC: true, AppSCC: true, AppBCC: true, AppMSF: true},
		PowerG: {AppCC: true, AppBFS: true, AppBC: true, AppMIS: true, AppMM: true,
			AppKC: true, AppTC: true, AppGC: true, AppLPA: true},
		Gemini:  {AppCC: true, AppBFS: true, AppBC: true, AppMIS: true, AppMM: true},
		LigraSM: {AppCC: true, AppBFS: true, AppBC: true, AppMIS: true, AppMM: true, AppKC: true, AppTC: true},
	}
	return support[sys][app]
}

// asDirected passes the benchmark graph to SCC as-is: the symmetrized edges
// make every connected component strongly connected, which exercises both
// traversal phases over the full graph — the cost pattern Table VI measures.
func asDirected(g *graph.Graph) *graph.Graph { return g }

// weighted attaches deterministic random weights when missing (the paper:
// "random weights are added to each of the edges if necessary").
func weighted(g *graph.Graph) *graph.Graph {
	if g.Weighted() {
		return g
	}
	return graph.WithRandomWeights(g, 7)
}
