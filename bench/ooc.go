package bench

// Out-of-core tier of the fixed perf suite: the XXL graph (an order of
// magnitude more edges than the XL tier) run through the FLASHBLK block
// backend with a cache budget well below the edge bytes, next to the same
// algorithms over the in-memory CSR. The stat carries the cache and
// scheduling counters, so the bimodal behavior (dense supersteps stream
// blocks, sparse supersteps read only frontier-resident blocks) is a
// committed baseline, not an implementation detail.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"flash"
	"flash/algo"
	"flash/graph"
)

// OOCStat is one out-of-core entry in BENCH_flash.json's ooc section.
type OOCStat struct {
	NsPerOp      int64 `json:"ns_per_op"`
	InMemNsPerOp int64 `json:"inmem_ns_per_op"`

	// Cache behavior under the budget (20% of the decoded edge bytes).
	CacheBudgetBytes int64   `json:"cache_budget_bytes"`
	EdgeBytes        uint64  `json:"edge_bytes"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	Evictions        uint64  `json:"evictions"`

	// Encoded bytes read from disk per superstep, split by scheduling mode.
	DenseSteps         uint64 `json:"dense_steps"`
	SparseSteps        uint64 `json:"sparse_steps"`
	BytesPerDenseStep  uint64 `json:"bytes_read_per_dense_step"`
	BytesPerSparseStep uint64 `json:"bytes_read_per_sparse_step"`

	// Memory: what the out-of-core run keeps resident (skeleton offsets,
	// block index, cache budget) next to the full in-memory CSR.
	ResidentBytes uint64 `json:"resident_bytes"`
	InMemBytes    uint64 `json:"inmem_bytes"`
	FileBytes     int64  `json:"file_bytes"`
}

// GenXXL deterministically generates the XXL-tier graph: >= 10x the stored
// edges of the XL tier (16384x12 keeps 362,422 edges after dedup; 65536x36
// keeps ~3.9M), the size class meant to be served from disk rather than
// resident.
func GenXXL() *graph.Graph {
	return graph.GenRMAT(65536, 65536*36, 101)
}

// oocAlgo is one XXL algorithm: run executes it over g and returns a
// result digest for cross-checking block vs CSR runs.
type oocAlgo struct {
	name string
	run  func(g *graph.Graph, opts []flash.Option) (uint64, error)
}

func oocAlgos() []oocAlgo {
	return []oocAlgo{
		{"bfs-xxl", func(g *graph.Graph, opts []flash.Option) (uint64, error) {
			dis, err := algo.BFS(g, 0, opts...)
			if err != nil {
				return 0, err
			}
			var sum uint64
			for _, d := range dis {
				sum = sum*31 + uint64(uint32(d))
			}
			return sum, nil
		}},
		{"cc-xxl", func(g *graph.Graph, opts []flash.Option) (uint64, error) {
			cc, err := algo.CC(g, opts...)
			if err != nil {
				return 0, err
			}
			var sum uint64
			for _, c := range cc {
				sum = sum*31 + uint64(c)
			}
			return sum, nil
		}},
	}
}

// MeasureOOC writes g to a FLASHBLK file in a throwaway directory and runs
// the XXL algorithms through the block backend at the given cache budget
// (<= 0 selects 20% of the decoded edge bytes), with the in-memory CSR run
// alongside as the baseline. Results must agree exactly between the two
// backends; a mismatch is an error, not a number.
func MeasureOOC(g *graph.Graph, budget int64, reps int) (map[string]OOCStat, error) {
	if reps < 1 {
		reps = 1
	}
	dir, err := os.MkdirTemp("", "flash-ooc-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "xxl.blk")
	if err := graph.WriteBlockFile(g, path, graph.DefaultBlockSize); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	bg, err := graph.OpenBlockFile(path)
	if err != nil {
		return nil, err
	}
	defer bg.Close()
	if budget <= 0 {
		budget = int64(bg.EdgeBytes()) / 5
	}
	sk := bg.Skeleton()

	out := make(map[string]OOCStat, 2)
	for _, a := range oocAlgos() {
		var stat OOCStat
		stat.CacheBudgetBytes = budget
		stat.EdgeBytes = bg.EdgeBytes()
		stat.ResidentBytes = sk.MemBytes() + bg.IndexBytes() + uint64(budget)
		stat.InMemBytes = g.MemBytes()
		stat.FileBytes = fi.Size()

		memNs := make([]int64, 0, reps)
		oocNs := make([]int64, 0, reps)
		var memSum, oocSum uint64
		var last flash.RunResult
		for i := 0; i < reps; i++ {
			ns, sum, _, err := timedRun(a, g, nil)
			if err != nil {
				return nil, fmt.Errorf("%s inmem: %w", a.name, err)
			}
			memNs, memSum = append(memNs, ns), sum

			opts := []flash.Option{
				flash.WithBlockBackend(bg),
				flash.WithBlockCacheBytes(budget),
			}
			ns, sum, res, err := timedRun(a, sk, opts)
			if err != nil {
				return nil, fmt.Errorf("%s ooc: %w", a.name, err)
			}
			oocNs, oocSum, last = append(oocNs, ns), sum, res
		}
		if memSum != oocSum {
			return nil, fmt.Errorf("%s: block backend result digest %#x != in-memory %#x", a.name, oocSum, memSum)
		}
		stat.NsPerOp = median(oocNs)
		stat.InMemNsPerOp = median(memNs)
		if total := last.BlockHits + last.BlockMisses; total > 0 {
			stat.CacheHitRate = float64(last.BlockHits) / float64(total)
		}
		stat.Evictions = last.BlockEvictions
		stat.DenseSteps = last.BlockStepsDense
		stat.SparseSteps = last.BlockStepsSparse
		if last.BlockStepsDense > 0 {
			stat.BytesPerDenseStep = last.BlockBytesDense / last.BlockStepsDense
		}
		if last.BlockStepsSparse > 0 {
			stat.BytesPerSparseStep = last.BlockBytesSparse / last.BlockStepsSparse
		}
		out[a.name] = stat
	}
	return out, nil
}

// timedRun executes one algorithm run at w4 on the in-memory transport and
// returns its wall time, result digest, and run counters.
func timedRun(a oocAlgo, g *graph.Graph, extra []flash.Option) (int64, uint64, flash.RunResult, error) {
	var stats flash.RunStats
	opts := append([]flash.Option{
		flash.WithWorkers(4),
		flash.WithRunStats(func(s flash.RunStats) { stats = s }),
	}, extra...)
	start := time.Now()
	sum, err := a.run(g, opts)
	return time.Since(start).Nanoseconds(), sum, stats.Result, err
}
