// Microbenchmarks for the per-edge hot path: one EdgeMap / VertexMap
// superstep over the RMAT social-graph analog, isolated from engine
// construction so allocs/op reflect steady-state per-superstep cost.
// bench/regress_test.go guards the sparse numbers against the committed
// BENCH_flash.json baseline.
package flash_test

import (
	"testing"

	"flash"
	"flash/algo"
	"flash/graph"
)

type hotProps struct{ Dis int32 }

// hotEngine builds an engine over the OR social analog with a seeded
// mid-size frontier, mirroring the middle supersteps of a BFS where the
// sparse kernel does the bulk of its work.
func hotEngine(b *testing.B, n int, opts ...flash.Option) (*flash.Engine[hotProps], *flash.VertexSubset) {
	b.Helper()
	g := graph.GenRMAT(n, n*12, 101)
	e, err := flash.NewEngine[hotProps](g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	e.VertexMap(e.All(), nil, func(v flash.Vertex[hotProps]) hotProps {
		return hotProps{Dis: int32(v.ID) % 64}
	})
	ids := make([]flash.VID, 0, n/16)
	for v := 0; v < n; v += 16 {
		ids = append(ids, flash.VID(v))
	}
	return e, e.FromIDs(ids...)
}

func hotUpdate(s, d flash.Vertex[hotProps]) hotProps {
	if nd := s.Val.Dis + 1; nd < d.Val.Dis {
		return hotProps{Dis: nd}
	}
	return *d.Val
}

func hotReduce(t, cur hotProps) hotProps {
	if t.Dis < cur.Dis {
		return t
	}
	return cur
}

// BenchmarkEdgeMapSparse measures one push-mode superstep (phase 1
// accumulate, phase 2 exchange, phase 3 apply, mirror sync).
func BenchmarkEdgeMapSparse(b *testing.B) {
	for _, c := range []struct {
		name string
		opts []flash.Option
	}{
		{"w1t1", []flash.Option{flash.WithWorkers(1)}},
		{"w4t1", []flash.Option{flash.WithWorkers(4)}},
		{"w4t4", []flash.Option{flash.WithWorkers(4), flash.WithThreads(4)}},
	} {
		b.Run(c.name, func(b *testing.B) {
			e, U := hotEngine(b, 4096, c.opts...)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.EdgeMapSparse(U, e.E(), nil, hotUpdate, nil, hotReduce)
			}
		})
	}
}

// BenchmarkEdgeMapDense measures one pull-mode superstep (frontier
// broadcast, in-edge scan, mirror sync).
func BenchmarkEdgeMapDense(b *testing.B) {
	for _, c := range []struct {
		name string
		opts []flash.Option
	}{
		{"w4t1", []flash.Option{flash.WithWorkers(4)}},
		{"w4t4", []flash.Option{flash.WithWorkers(4), flash.WithThreads(4)}},
	} {
		b.Run(c.name, func(b *testing.B) {
			e, U := hotEngine(b, 4096, c.opts...)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.EdgeMapDense(U, e.E(), nil, hotUpdate, nil)
			}
		})
	}
}

// BenchmarkVertexMap measures one full-frontier VertexMap superstep.
func BenchmarkVertexMap(b *testing.B) {
	e, _ := hotEngine(b, 4096, flash.WithWorkers(4))
	defer e.Close()
	all := e.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.VertexMap(all, nil, func(v flash.Vertex[hotProps]) hotProps {
			return hotProps{Dis: v.Val.Dis}
		})
	}
}

// BenchmarkBFSEndToEnd measures a whole BFS (engine construction included)
// on the OR analog, the figure the fixed suite records as ns/op.
func BenchmarkBFSEndToEnd(b *testing.B) {
	g := graph.GenRMAT(4096, 4096*12, 101)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.BFS(g, 0, flash.WithWorkers(4)); err != nil {
			b.Fatal(err)
		}
	}
}
