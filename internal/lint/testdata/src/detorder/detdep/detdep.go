// Package detdep is the cross-package half of the detorder fixture: the map
// iteration lives here, the //flash:deterministic root lives in the parent
// package. Only the module-wide call graph connects them — the v1
// per-package analyzer went blind at this boundary (pinned by the negative
// below staying silent).
package detdep

func routes() map[int]bool { return nil }

// ShipRouted iterates a map and is reached from the parent package's
// deterministic root.
func ShipRouted(dst []byte) []byte {
	for to := range routes() { // want `map iteration in ShipRouted`
		_ = to
	}
	return dst
}

// ShipSorted is the pinned negative: reached from the same root, but slice
// iteration is ordered.
func ShipSorted(dst []byte) []byte {
	for i := 0; i < 4; i++ {
		dst = append(dst, byte(i)) // no diagnostic: ordered loop
	}
	return dst
}
