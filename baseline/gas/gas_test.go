package gas

import (
	"math"
	"testing"

	"flash/graph"
)

var cfg = Config{Workers: 3}

func TestBFS(t *testing.T) {
	g := graph.GenErdosRenyi(80, 300, 1)
	got, err := BFS(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// BFS invariants: root 0; adjacent levels differ by at most 1; every
	// reached non-root has a predecessor one level up.
	if got[0] != 0 {
		t.Fatal("root not 0")
	}
	for v := 1; v < g.NumVertices(); v++ {
		if got[v] == -1 {
			continue
		}
		hasParent := false
		for _, u := range g.OutNeighbors(graph.VID(v)) {
			if got[u] == got[v]-1 {
				hasParent = true
			}
			if got[u] != -1 && (got[u]-got[v] > 1 || got[v]-got[u] > 1) {
				t.Fatalf("edge (%d,%d) levels %d,%d", u, v, got[u], got[v])
			}
		}
		if !hasParent {
			t.Fatalf("vertex %d at level %d has no parent", v, got[v])
		}
	}
}

func TestCC(t *testing.T) {
	g := graph.GenErdosRenyi(70, 120, 2)
	got, err := CC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if got[u] != got[v] {
			t.Fatalf("edge (%d,%d) labels differ", u, v)
		}
		return true
	})
	// Each label must be the minimum id of its component.
	for v, l := range got {
		if uint32(v) < l {
			t.Fatalf("label %d above member %d", l, v)
		}
	}
}

func TestBC(t *testing.T) {
	g := graph.GenErdosRenyi(40, 140, 4)
	got, err := BC(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refBrandes(g, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Fatalf("bc[%d]=%g want %g", v, got[v], want[v])
		}
	}
}

func refBrandes(g *graph.Graph, root graph.VID) []float64 {
	n := g.NumVertices()
	delta := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[root] = 1
	dist[root] = 0
	var order []graph.VID
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		order = append(order, u)
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, v := range g.OutNeighbors(w) {
			if dist[v] == dist[w]+1 {
				delta[w] += sigma[w] / sigma[v] * (1 + delta[v])
			}
		}
	}
	return delta
}

func TestMIS(t *testing.T) {
	for _, g := range []*graph.Graph{graph.GenCycle(11), graph.GenStar(12), graph.GenErdosRenyi(60, 200, 5)} {
		in, err := MIS(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if in[u] && in[v] {
				t.Fatalf("%s: adjacent in MIS", g.Name())
			}
			return true
		})
		for v := 0; v < g.NumVertices(); v++ {
			if in[v] {
				continue
			}
			ok := false
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				if in[u] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s: %d uncovered", g.Name(), v)
			}
		}
	}
}

func TestMM(t *testing.T) {
	for _, g := range []*graph.Graph{graph.GenPath(9), graph.GenCycle(8), graph.GenErdosRenyi(50, 150, 6)} {
		match, err := MM(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if p := match[v]; p != -1 && (match[p] != int32(v) || !g.HasEdge(graph.VID(v), graph.VID(p))) {
				t.Fatalf("%s: bad match %d<->%d", g.Name(), v, p)
			}
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if match[u] == -1 && match[v] == -1 {
				t.Fatalf("%s: not maximal at (%d,%d)", g.Name(), u, v)
			}
			return true
		})
	}
}

func TestKC(t *testing.T) {
	g := graph.GenErdosRenyi(40, 140, 7)
	got, err := KC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refCore(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("core[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func refCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VID(v))
	}
	core := make([]int32, n)
	removed := make([]bool, n)
	maxSeen := 0
	for round := 0; round < n; round++ {
		bv, bd := -1, 1<<30
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bd {
				bv, bd = v, deg[v]
			}
		}
		if bd > maxSeen {
			maxSeen = bd
		}
		core[bv] = int32(maxSeen)
		removed[bv] = true
		for _, u := range g.OutNeighbors(graph.VID(bv)) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return core
}

func TestTC(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want int64
	}{
		{graph.GenComplete(5), 10},
		{graph.GenCycle(3), 1},
		{graph.GenStar(9), 0},
		{graph.GenComplete(7), 35},
	} {
		got, err := TC(tc.g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("%s: %d triangles want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestGC(t *testing.T) {
	g := graph.GenErdosRenyi(60, 220, 8)
	colors, err := GC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if colors[u] == colors[v] {
			t.Fatalf("edge (%d,%d) same color", u, v)
		}
		return true
	})
}

func TestLPA(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.VID(i), graph.VID(j))
			b.AddEdge(graph.VID(i+5), graph.VID(j+5))
		}
	}
	b.AddEdge(0, 5)
	labels, err := LPA(b.Build(), 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if labels[v] != labels[1] || labels[v+5] != labels[6] {
			t.Fatalf("cliques fragmented: %v", labels)
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.GenPath(3)
	if _, err := Run(g, func(graph.VID) int32 { return 0 }, nil, Program[int32, int32]{}, cfg); err == nil {
		t.Fatal("empty program accepted")
	}
}
