package flash

// DSU is the disjoint-set (union–find) structure the paper provides as a
// pre-defined helper (dsu, dsu_find, dsu_union) for algorithms such as
// biconnected components and minimum spanning forest. It is a driver-side
// sequential structure used between supersteps, exactly as in the paper's
// Algorithm 19 and Algorithm 21.
type DSU struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewDSU returns a DSU over n singleton sets {0} .. {n-1}.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the representative of x's set (with path halving).
func (d *DSU) Find(x VID) VID {
	i := int32(x)
	for d.parent[i] != i {
		d.parent[i] = d.parent[d.parent[i]]
		i = d.parent[i]
	}
	return VID(i)
}

// Union merges the sets of a and b and reports whether they were distinct.
func (d *DSU) Union(a, b VID) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	d.sets--
	return true
}

// Snapshot returns a deep copy of the DSU state, shaped for
// Engine.OnCheckpoint: register d.Snapshot/d.Restore so checkpoint recovery
// rewinds driver-side union-find state together with engine state.
func (d *DSU) Snapshot() any {
	return &DSU{
		parent: append([]int32(nil), d.parent...),
		rank:   append([]int8(nil), d.rank...),
		sets:   d.sets,
	}
}

// Restore overwrites d with a state previously returned by Snapshot.
func (d *DSU) Restore(s any) {
	snap := s.(*DSU)
	copy(d.parent, snap.parent)
	copy(d.rank, snap.rank)
	d.sets = snap.sets
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b VID) bool { return d.Find(a) == d.Find(b) }

// Sets returns the number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }
