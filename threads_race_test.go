// Race-detector soak for the per-thread accumulator paths: sparse and dense
// EdgeMap kernels with Threads=4 on a skewed RMAT graph (hub-heavy degree
// distribution maximizes accumulator contention) must produce results
// identical to Threads=1. Run under `go test -race` this exercises phase-1
// shard accumulation, mergeAcc, the parallel phase-3 apply, publishNext, and
// the parallel mirror-sync encode.
package flash_test

import (
	"fmt"
	"testing"

	"flash"
	"flash/algo"
	"flash/graph"
)

func TestThreadsRaceSoak(t *testing.T) {
	g := graph.GenRMAT(512, 4096, 11)
	for _, mode := range []struct {
		name string
		m    flash.Mode
	}{{"push", flash.Push}, {"pull", flash.Pull}, {"auto", flash.Auto}} {
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("bfs/%s/w%d", mode.name, w), func(t *testing.T) {
				want, err := algo.BFS(g, 0, flash.WithWorkers(w), flash.WithMode(mode.m))
				if err != nil {
					t.Fatal(err)
				}
				got, err := algo.BFS(g, 0,
					flash.WithWorkers(w), flash.WithThreads(4), flash.WithMode(mode.m))
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("dist[%d] = %d with Threads=4, %d with Threads=1", v, got[v], want[v])
					}
				}
			})
		}
	}
	// CC exercises label-min propagation with a full initial frontier (dense
	// phase-1 scan across all shards) and necessary-mirror syncs.
	for _, w := range []int{2, 4} {
		t.Run(fmt.Sprintf("cc/w%d", w), func(t *testing.T) {
			want, err := algo.CC(g, flash.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			got, err := algo.CC(g, flash.WithWorkers(w), flash.WithThreads(4))
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("label[%d] = %d with Threads=4, %d with Threads=1", v, got[v], want[v])
				}
			}
		})
	}
	// SSSP adds float32 weights; min-reduce keeps the comparison exact
	// regardless of merge fold order.
	t.Run("sssp/w4", func(t *testing.T) {
		want, err := algo.SSSP(g, 0, flash.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		got, err := algo.SSSP(g, 0, flash.WithWorkers(4), flash.WithThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("dist[%d] = %v with Threads=4, %v with Threads=1", v, got[v], want[v])
			}
		}
	})
}
