package algo

import (
	"flash"
	"flash/graph"
)

type lpaProps struct {
	C   int32   // current label
	CC  int32   // candidate label this round
	Set []int32 // labels received from neighbors
}

// LPA runs label propagation for community detection (paper Algorithm 20):
// every vertex repeatedly adopts the most frequent label among its
// neighbors, for at most maxIters rounds or until no label changes.
// Initial labels are the vertex ids. Ties break toward the smaller label so
// the result is deterministic.
func LPA(g *graph.Graph, maxIters int, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[lpaProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	e.VertexMap(e.All(), nil, func(v flash.Vertex[lpaProps]) lpaProps {
		return lpaProps{C: int32(v.ID), CC: int32(v.ID)}
	})
	for it := 0; it < maxIters; it++ {
		// Collect neighbor labels (reset the multiset first).
		e.VertexMap(e.All(), nil, func(v flash.Vertex[lpaProps]) lpaProps {
			nv := *v.Val
			nv.Set = nil
			return nv
		})
		e.EdgeMap(e.All(), e.E(),
			nil,
			func(s, d flash.Vertex[lpaProps]) lpaProps {
				nv := *d.Val
				nv.Set = append(append([]int32(nil), nv.Set...), s.Val.C)
				return nv
			},
			nil,
			func(t, cur lpaProps) lpaProps {
				cur.Set = append(cur.Set, t.Set...)
				return cur
			},
			flash.NoSync()) // Set is master-local (not critical, Table II)
		// Pick the most frequent neighbor label, then drop the multiset so
		// later syncs ship only the small critical fields.
		e.VertexMap(e.All(), nil, func(v flash.Vertex[lpaProps]) lpaProps {
			nv := *v.Val
			if len(nv.Set) == 0 {
				nv.Set = nil
				return nv
			}
			count := make(map[int32]int, len(nv.Set))
			best, bestN := nv.CC, 0
			for _, l := range nv.Set {
				count[l]++
				c := count[l]
				if c > bestN || (c == bestN && l < best) {
					best, bestN = l, c
				}
			}
			nv.CC = best
			nv.Set = nil
			return nv
		}, flash.NoSync()) // CC and Set are read only by the master
		changed := e.VertexMap(e.All(),
			func(v flash.Vertex[lpaProps]) bool { return v.Val.C != v.Val.CC },
			func(v flash.Vertex[lpaProps]) lpaProps {
				nv := *v.Val
				nv.C = nv.CC
				nv.Set = nil
				return nv
			})
		if changed.Size() == 0 {
			break
		}
	}

	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *lpaProps) { out[v] = val.C })
	return out, nil
}
