package algo

import (
	"flash"
	"flash/graph"
)

type misProps struct {
	D bool   // dominated: a neighbor entered the MIS
	B bool   // still a local-minimum candidate this round
	R uint64 // priority: deg*|V| + id (lower wins), per paper Algorithm 13
}

// MIS computes a maximal independent set with Luby's algorithm as expressed
// in the paper (Algorithm 13): every round, the undecided vertices that are
// local priority minima among their undecided neighbors join the set and
// knock out their neighbors. Returns membership per vertex.
func MIS(g *graph.Graph, opts ...flash.Option) ([]bool, error) {
	e, err := newEngine[misProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	n := uint64(g.NumVertices())
	a := e.VertexMap(e.All(), nil, func(v flash.Vertex[misProps]) misProps {
		return misProps{D: false, B: true, R: uint64(v.Deg)*n + uint64(v.ID)}
	})
	for a.Size() != 0 {
		// Knock out candidates that have an undecided neighbor with lower
		// priority (dense over edges with targets in A).
		e.EdgeMapDense(e.All(), e.JoinEU(e.E(), a),
			func(s, d flash.Vertex[misProps]) bool { return !s.Val.D && s.Val.R < d.Val.R },
			func(s, d flash.Vertex[misProps]) misProps {
				nv := *d.Val
				nv.B = false
				return nv
			},
			func(d flash.Vertex[misProps]) bool { return d.Val.B })
		// Survivors join the MIS.
		b := e.VertexMap(a, func(v flash.Vertex[misProps]) bool { return v.Val.B }, nil)
		// Their neighbors become dominated.
		c := e.EdgeMapSparse(b, e.E(),
			nil,
			func(s, d flash.Vertex[misProps]) misProps {
				nv := *d.Val
				nv.D = true
				return nv
			},
			func(d flash.Vertex[misProps]) bool { return !d.Val.D },
			func(t, cur misProps) misProps {
				cur.D = true
				return cur
			})
		// Remaining candidates: undominated non-members, with B reset.
		a = e.VertexMap(e.Minus(a, c),
			func(v flash.Vertex[misProps]) bool { return !v.Val.B },
			func(v flash.Vertex[misProps]) misProps {
				nv := *v.Val
				nv.B = true
				return nv
			})
	}

	out := make([]bool, g.NumVertices())
	e.Gather(func(v graph.VID, val *misProps) { out[v] = !val.D })
	return out, nil
}
