// Durable per-process state for cluster mode: a WorkerStore owns one
// worker process's checkpoint images and its superstep replay log.
//
// In-process recovery replays supersteps by re-executing the driver's logged
// closures against live peer state. A killed *process* has no closures to
// re-execute and no peers frozen at the failure point, so cluster recovery
// is different: every process durably logs the driver-visible outcome of
// each superstep (the merged output subset) and of each driver-side Gather
// (the full value array), and a respawned process fast-forwards by replaying
// outcomes from the log — no computation, no communication — until it
// rejoins the live frontier. Because the engine is deterministic, every
// process logs the identical record sequence, so the record count stored in
// a checkpoint's metadata is a fleet-wide synchronization point: resuming
// from checkpoint S means "truncate the log to S's record count and replay".
//
// The log is append-only during a run and fsynced before each checkpoint
// image is written, so a checkpoint's record count never exceeds the durable
// log. Torn tail records from a crash sit beyond the last checkpoint's count
// and are truncated on resume.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"flash/internal/comm"
)

// clusterLogMagic heads a worker's step log file.
const clusterLogMagic = "FLSHLOG1"

// Cluster log record kinds.
const (
	// logKindStep is one superstep outcome: the merged output subset of all
	// workers, encoded per worker as a frontier frame.
	logKindStep byte = 1
	// logKindGather is one driver-side Gather outcome: the full value array
	// in ascending vertex order, codec-encoded.
	logKindGather byte = 2
)

// clusterLogRecord is one decoded log entry.
type clusterLogRecord struct {
	kind    byte
	payload []byte
}

// clusterLogHdrSize is the per-record header: kind u8 | length u32 |
// crc32c u32 (CRC over the kind byte and the payload).
const clusterLogHdrSize = 9

// WorkerStore is one worker process's durable state directory: checkpoint
// images (ckpt-<seq>.flashckp, the last two kept) plus the append-only
// superstep log (steps.flashlog). It is the cluster analogue of a FileStore,
// extended with the log that makes deterministic fast-forward possible.
type WorkerStore struct {
	dir  string
	log  *os.File
	nrec uint64 // records in the validated prefix plus appends since
}

// OpenWorkerStore opens (creating if needed) worker w's state directory
// under dir.
func OpenWorkerStore(dir string, w int) (*WorkerStore, error) {
	sub := filepath.Join(dir, fmt.Sprintf("w%03d", w))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return nil, fmt.Errorf("core: worker store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(sub, "steps.flashlog"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: worker store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("core: worker store: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(clusterLogMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: worker store: init log: %w", err)
		}
	} else {
		hdr := make([]byte, len(clusterLogMagic))
		if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != clusterLogMagic {
			f.Close()
			return nil, fmt.Errorf("core: worker store: %s is not a step log", f.Name())
		}
	}
	return &WorkerStore{dir: sub, log: f}, nil
}

// Dir returns the store's directory.
func (s *WorkerStore) Dir() string { return s.dir }

// Close releases the log file. Images already saved stay on disk.
func (s *WorkerStore) Close() error { return s.log.Close() }

func (s *WorkerStore) ckptPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.flashckp", seq))
}

// ckptSeqs returns the checkpoint sequence numbers present, ascending.
func (s *WorkerStore) ckptSeqs() []uint64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".flashckp") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".flashckp"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// LatestSeq reports the highest checkpoint sequence whose image loads and
// validates, or 0 when none does. A worker registers this with the
// coordinator so the fleet can agree on min(latest) as the resume point.
func (s *WorkerStore) LatestSeq() uint64 {
	seqs := s.ckptSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		if _, err := s.loadImage(seqs[i]); err == nil {
			return seqs[i]
		}
	}
	return 0
}

// saveImage fsyncs the log (a checkpoint must never reference records the
// disk does not hold), writes the image atomically, and prunes all but the
// two most recent images. Two are kept because processes checkpoint at the
// same superstep but not atomically across the fleet: a crash between one
// worker's save and another's leaves the fleet one sequence apart, and
// min(latest) then needs the previous image on the ahead worker.
func (s *WorkerStore) saveImage(img *CheckpointImage) error {
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("core: worker store: sync log: %w", err)
	}
	path := s.ckptPath(img.Seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: worker store: %w", err)
	}
	_, werr := f.Write(EncodeCheckpointFile(img))
	serr := f.Sync()
	cerr := f.Close()
	for _, err := range []error{werr, serr, cerr} {
		if err != nil {
			os.Remove(tmp)
			return fmt.Errorf("core: worker store: write image: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: worker store: %w", err)
	}
	seqs := s.ckptSeqs()
	for len(seqs) > 2 {
		os.Remove(s.ckptPath(seqs[0]))
		seqs = seqs[1:]
	}
	return nil
}

// loadImage reads and validates the image saved at seq.
func (s *WorkerStore) loadImage(seq uint64) (*CheckpointImage, error) {
	data, err := os.ReadFile(s.ckptPath(seq))
	if err != nil {
		return nil, fmt.Errorf("core: worker store: %w", err)
	}
	img, err := DecodeCheckpointFile(data)
	if err != nil {
		return nil, fmt.Errorf("core: worker store: image %d: %w", seq, err)
	}
	if img.Seq != seq {
		return nil, fmt.Errorf("core: worker store: image file %d holds sequence %d", seq, img.Seq)
	}
	return img, nil
}

// appendRecord writes one log record. Records are not fsynced individually —
// saveImage syncs before any checkpoint can reference them.
func (s *WorkerStore) appendRecord(kind byte, payload []byte) error {
	hdr := make([]byte, clusterLogHdrSize, clusterLogHdrSize+len(payload))
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(hdr[:1], ckptCRCTable), ckptCRCTable, payload)
	binary.LittleEndian.PutUint32(hdr[5:9], crc)
	if _, err := s.log.Write(append(hdr, payload...)); err != nil {
		return fmt.Errorf("core: worker store: append log record: %w", err)
	}
	s.nrec++
	return nil
}

// records returns the count of log records written so far (the value a
// checkpoint's metadata freezes).
func (s *WorkerStore) records() uint64 { return s.nrec }

// replay reads and validates the first n records, truncates everything past
// them (the un-checkpointed tail of a previous incarnation, possibly torn),
// and leaves the log positioned for appending. n = 0 resets the log for a
// fresh run.
func (s *WorkerStore) replay(n uint64) ([]clusterLogRecord, error) {
	if _, err := s.log.Seek(int64(len(clusterLogMagic)), io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: worker store: %w", err)
	}
	recs := make([]clusterLogRecord, 0, n)
	off := int64(len(clusterLogMagic))
	hdr := make([]byte, clusterLogHdrSize)
	for uint64(len(recs)) < n {
		if _, err := io.ReadFull(s.log, hdr); err != nil {
			return nil, fmt.Errorf("core: worker store: log record %d: %w", len(recs), err)
		}
		length := binary.LittleEndian.Uint32(hdr[1:5])
		if length > comm.MaxFrameSize {
			return nil, fmt.Errorf("core: worker store: log record %d claims %d bytes", len(recs), length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(s.log, payload); err != nil {
			return nil, fmt.Errorf("core: worker store: log record %d: %w", len(recs), err)
		}
		crc := crc32.Update(crc32.Checksum(hdr[:1], ckptCRCTable), ckptCRCTable, payload)
		if crc != binary.LittleEndian.Uint32(hdr[5:9]) {
			return nil, fmt.Errorf("core: worker store: log record %d: %w", len(recs), comm.ErrCorrupt)
		}
		recs = append(recs, clusterLogRecord{kind: hdr[0], payload: payload})
		off += clusterLogHdrSize + int64(length)
	}
	if err := s.log.Truncate(off); err != nil {
		return nil, fmt.Errorf("core: worker store: truncate log: %w", err)
	}
	if _, err := s.log.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: worker store: %w", err)
	}
	s.nrec = n
	return recs, nil
}

// reset discards all durable state for a fresh run: every checkpoint image
// is removed and the log truncated to its header.
func (s *WorkerStore) reset() error {
	for _, seq := range s.ckptSeqs() {
		if err := os.Remove(s.ckptPath(seq)); err != nil {
			return fmt.Errorf("core: worker store: %w", err)
		}
	}
	_, err := s.replay(0)
	return err
}
