package bench

// The fixed perf suite behind BENCH_flash.json: a deterministic grid of
// end-to-end algorithm runs (BFS / CC / PageRank / SSSP x mem / tcp x
// workers {1,2,4} x threads {1,2,4}) plus the sparse-EdgeMap microbenchmark
// the regression guard in regress_test.go tracks. Every cell reports median
// wall time, heap allocation deltas, and the transport's traffic counters,
// so a perf regression shows up as a diff against the committed baseline
// rather than a vague slowdown.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"
	"unsafe"

	"flash"
	"flash/algo"
	"flash/graph"
	"flash/metrics"
)

// perfProps mirrors the root hotpath benchmark's property type so the micro
// numbers here and `go test -bench=EdgeMapSparse` measure the same kernel.
type perfProps struct{ Dis int32 }

// MicroStat is one microbenchmark entry in BENCH_flash.json.
type MicroStat struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// PerfCell is one end-to-end suite entry in BENCH_flash.json.
type PerfCell struct {
	Name        string `json:"name"`
	Algo        string `json:"algo"`
	Transport   string `json:"transport"`
	Workers     int    `json:"workers"`
	Threads     int    `json:"threads"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Messages    uint64 `json:"messages"`
	BytesSent   uint64 `json:"bytes_sent"`
	Supersteps  int    `json:"supersteps"`
}

// MemStat is one state-memory entry in BENCH_flash.json: the engine's
// resident per-worker property state (summed over workers) after a full BFS,
// next to what the pre-slot O(|V|·Threads) layout held for the same
// configuration.
type MemStat struct {
	StateBytes          uint64  `json:"state_bytes"`
	StateBytesPerVertex float64 `json:"state_bytes_per_vertex"`
	LegacyBytes         uint64  `json:"legacy_bytes"`
	SavingsPct          float64 `json:"savings_pct"`
}

// RecoveryStat is one worker-loss entry in BENCH_flash.json: a BFS run on
// the fixed graph during which one worker is hard-killed mid-run, with
// checkpoints going to a durable file store. It reports the recovery cost
// (time spent inside rollback/restart/replay), the checkpoint write volume,
// and the faulted wall time next to the fault-free one.
type RecoveryStat struct {
	FaultFreeNs     int64  `json:"fault_free_ns"`
	FaultedNs       int64  `json:"faulted_ns"`
	TimeToRecoverNs int64  `json:"time_to_recover_ns"`
	CheckpointBytes uint64 `json:"checkpoint_bytes"`
	Checkpoints     uint64 `json:"checkpoints"`
	Restarts        uint64 `json:"restarts"`
	Recoveries      uint64 `json:"recoveries"`
}

// ResizeStat is one elastic-membership entry in BENCH_flash.json: a BFS run
// on the fixed graph during which the engine grows 2→8 workers and then
// shrinks to 4 at scheduled supersteps. It reports the number of completed
// membership changes, the master-state volume shipped between partitions,
// and the wall time spent paused at resize barriers, next to the elastic
// run's total and a fixed-4-worker fault-free baseline.
type ResizeStat struct {
	FixedNs       int64  `json:"fixed_ns"`
	ElasticNs     int64  `json:"elastic_ns"`
	Resizes       uint64 `json:"resizes"`
	MigratedBytes uint64 `json:"migrated_bytes"`
	ResizeTimeNs  int64  `json:"resize_time_ns"`
}

// PerfSuite is the full BENCH_flash.json document.
type PerfSuite struct {
	Schema      string                  `json:"schema"`
	Graph       string                  `json:"graph"`
	Vertices    int                     `json:"vertices"`
	Edges       int                     `json:"edges"`
	GraphXL     string                  `json:"graph_xl,omitempty"`
	VerticesXL  int                     `json:"vertices_xl,omitempty"`
	EdgesXL     int                     `json:"edges_xl,omitempty"`
	GraphXXL    string                  `json:"graph_xxl,omitempty"`
	VerticesXXL int                     `json:"vertices_xxl,omitempty"`
	EdgesXXL    int                     `json:"edges_xxl,omitempty"`
	GoMaxProcs  int                     `json:"go_maxprocs"`
	Reps        int                     `json:"reps"`
	Micro       map[string]MicroStat    `json:"micro"`
	Mem         map[string]MemStat      `json:"mem,omitempty"`
	Recovery    map[string]RecoveryStat `json:"recovery,omitempty"`
	Resize      map[string]ResizeStat   `json:"resize,omitempty"`
	Serve       map[string]ServeStat    `json:"serve,omitempty"`
	Ooc         map[string]OOCStat      `json:"ooc,omitempty"`
	Cluster     map[string]ClusterStat  `json:"cluster,omitempty"`
	Suite       []PerfCell              `json:"suite"`
}

// MicroSparse benchmarks one sparse (push-mode) EdgeMap superstep on the OR
// social analog with a seeded mid-size frontier — the same setup as the root
// BenchmarkEdgeMapSparse, callable from the harness and the regress guard.
func MicroSparse(workers, threads int) testing.BenchmarkResult {
	g := graph.GenRMAT(4096, 4096*12, 101)
	return testing.Benchmark(func(b *testing.B) {
		e, err := flash.NewEngine[perfProps](g,
			flash.WithWorkers(workers), flash.WithThreads(threads))
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		e.VertexMap(e.All(), nil, func(v flash.Vertex[perfProps]) perfProps {
			return perfProps{Dis: int32(v.ID) % 64}
		})
		ids := make([]flash.VID, 0, g.NumVertices()/16)
		for v := 0; v < g.NumVertices(); v += 16 {
			ids = append(ids, flash.VID(v))
		}
		u := e.FromIDs(ids...)
		update := func(s, d flash.Vertex[perfProps]) perfProps {
			if nd := s.Val.Dis + 1; nd < d.Val.Dis {
				return perfProps{Dis: nd}
			}
			return *d.Val
		}
		reduce := func(t, cur perfProps) perfProps {
			if t.Dis < cur.Dis {
				return t
			}
			return cur
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.EdgeMapSparse(u, e.E(), nil, update, nil, reduce)
		}
	})
}

// MeasureStateMemory builds an engine over the fixed RMAT graph, runs a full
// BFS so any lazily-materialized state (parallel-push accumulator shards) is
// in place, and reports the resident property-state footprint next to what
// the pre-slot layout — full |V|-sized current array plus Threads full-size
// accumulator shards per worker — would have held. Engine.StateBytes is
// deterministic for a fixed graph and configuration, so the regress guard
// can hold the per-vertex value to a hard threshold.
func MeasureStateMemory(workers, threads int) (MemStat, error) {
	g := graph.GenRMAT(4096, 4096*12, 101)
	e, err := flash.NewEngine[perfProps](g,
		flash.WithWorkers(workers), flash.WithThreads(threads))
	if err != nil {
		return MemStat{}, err
	}
	defer e.Close()
	const inf = int32(1) << 30
	e.VertexMap(e.All(), nil, func(v flash.Vertex[perfProps]) perfProps {
		if v.ID == 0 {
			return perfProps{}
		}
		return perfProps{Dis: inf}
	})
	u := e.FromIDs(0)
	for u.Size() != 0 {
		u = e.EdgeMap(u, e.E(),
			func(s, d flash.Vertex[perfProps]) bool { return d.Val.Dis > s.Val.Dis+1 },
			func(s, d flash.Vertex[perfProps]) perfProps { return perfProps{Dis: s.Val.Dis + 1} },
			func(d flash.Vertex[perfProps]) bool { return d.Val.Dis == inf },
			func(t, cur perfProps) perfProps {
				if t.Dis < cur.Dis {
					return t
				}
				return cur
			})
	}
	n := g.NumVertices()
	state := e.StateBytes()
	legacy := legacyStateBytes(n, workers, threads, uint64(unsafe.Sizeof(perfProps{})))
	return MemStat{
		StateBytes:          state,
		StateBytesPerVertex: float64(state) / float64(n),
		LegacyBytes:         legacy,
		SavingsPct:          100 * (1 - float64(state)/float64(legacy)),
	}, nil
}

// legacyStateBytes models the pre-slot layout's resident footprint: per
// worker, a |V|-sized cur array, Threads |V|-sized accumulator shards with
// |V|-bit membership sets, master-sized next/pend buffers and bitsets, and
// the |V|-bit frontier bitmap.
func legacyStateBytes(n, workers, threads int, vsz uint64) uint64 {
	words := func(c int) uint64 { return uint64((c + 63) / 64 * 8) }
	var total uint64
	for w := 0; w < workers; w++ {
		lc := n / workers
		if w < n%workers {
			lc++
		}
		total += uint64(n) * vsz                              // cur
		total += uint64(threads) * (uint64(n)*vsz + words(n)) // acc shards
		total += 2 * uint64(lc) * vsz                         // next + pendVal
		total += 2*words(lc) + words(n)                       // nextSet + pendSet + frontier
	}
	return total
}

// MeasureRecovery runs the worker-loss scenario on the fixed graph: a
// fault-free BFS for the baseline wall time, then the same BFS with worker 3
// hard-killed at round 3, checkpointing every 2 supersteps to a file store in
// a throwaway directory. The run must finish (the kill is survivable), and
// the collector's recovery counters populate the stat.
func MeasureRecovery(transport string) (RecoveryStat, error) {
	g := graph.GenRMAT(4096, 4096*12, 101)
	base := []flash.Option{flash.WithWorkers(4)}
	if transport == "tcp" {
		base = append(base, flash.WithTCP())
	}
	start := time.Now()
	if _, err := algo.BFS(g, 0, base...); err != nil {
		return RecoveryStat{}, err
	}
	faultFree := time.Since(start)
	dir, err := os.MkdirTemp("", "flash-recovery-")
	if err != nil {
		return RecoveryStat{}, err
	}
	defer os.RemoveAll(dir)
	store, err := flash.NewFileCheckpointStore(filepath.Join(dir, "ckpt.flash"))
	if err != nil {
		return RecoveryStat{}, err
	}
	col := metrics.New()
	opts := append(append([]flash.Option{}, base...),
		flash.WithCollector(col),
		flash.WithCheckpointEvery(2),
		flash.WithCheckpointStore(store),
		flash.WithMaxRecoveries(6),
		flash.WithHeartbeatEvery(10*time.Millisecond),
		flash.WithDrainTimeout(150*time.Millisecond),
		flash.WithFaultPlan(flash.FaultPlan{
			Kills: []flash.WorkerKill{{Worker: 3, Round: 3}},
		}),
	)
	start = time.Now()
	if _, err := algo.BFS(g, 0, opts...); err != nil {
		return RecoveryStat{}, fmt.Errorf("faulted run: %w", err)
	}
	faulted := time.Since(start)
	return RecoveryStat{
		FaultFreeNs:     faultFree.Nanoseconds(),
		FaultedNs:       faulted.Nanoseconds(),
		TimeToRecoverNs: col.RecoveryTime.Nanoseconds(),
		CheckpointBytes: col.CheckpointBytes,
		Checkpoints:     col.Checkpoints,
		Restarts:        col.Restarts,
		Recoveries:      col.Recoveries,
	}, nil
}

// MeasureResize runs the elastic-membership scenario on the fixed graph: a
// fault-free fixed-4-worker BFS for the baseline wall time, then the same
// BFS started on 2 workers with a schedule policy that grows the engine to 8
// workers after superstep 2 and shrinks it to 4 after superstep 4. The
// collector's elasticity counters populate the stat, so the migration cost
// of a membership change is tracked as a first-class benchmark number.
func MeasureResize(transport string) (ResizeStat, error) {
	g := graph.GenRMAT(4096, 4096*12, 101)
	fixedOpts := []flash.Option{flash.WithWorkers(4)}
	if transport == "tcp" {
		fixedOpts = append(fixedOpts, flash.WithTCP())
	}
	start := time.Now()
	if _, err := algo.BFS(g, 0, fixedOpts...); err != nil {
		return ResizeStat{}, err
	}
	fixed := time.Since(start)
	col := metrics.New()
	opts := []flash.Option{
		flash.WithWorkers(2),
		flash.WithCollector(col),
		flash.WithResizePolicy(flash.SchedulePolicy(map[int]int{2: 8, 4: 4})),
	}
	if transport == "tcp" {
		opts = append(opts, flash.WithTCP())
	}
	start = time.Now()
	if _, err := algo.BFS(g, 0, opts...); err != nil {
		return ResizeStat{}, fmt.Errorf("elastic run: %w", err)
	}
	elastic := time.Since(start)
	return ResizeStat{
		FixedNs:       fixed.Nanoseconds(),
		ElasticNs:     elastic.Nanoseconds(),
		Resizes:       col.Resizes,
		MigratedBytes: col.MigratedBytes,
		ResizeTimeNs:  col.ResizeTime.Nanoseconds(),
	}, nil
}

// perfAlgo is one algorithm of the fixed grid. run executes a full job with
// the supplied engine options and must do all work before returning.
type perfAlgo struct {
	name string
	run  func(opts []flash.Option) error
}

func fixedAlgos(g, weighted *graph.Graph) []perfAlgo {
	return []perfAlgo{
		{"bfs", func(o []flash.Option) error { _, err := algo.BFS(g, 0, o...); return err }},
		{"cc", func(o []flash.Option) error { _, err := algo.CC(g, o...); return err }},
		{"pagerank", func(o []flash.Option) error { _, err := algo.PageRank(g, 10, 0, o...); return err }},
		{"sssp", func(o []flash.Option) error { _, err := algo.SSSP(weighted, 0, o...); return err }},
	}
}

// FixedSuite runs the whole grid with one warmup plus reps timed repetitions
// per cell and returns the populated document.
func FixedSuite(reps int) (*PerfSuite, error) {
	// Median-of-reps needs at least three samples to be a median at all; a
	// single-rep "median" is whatever the scheduler did that run, and the
	// committed baseline would inherit the noise.
	if reps < 3 {
		reps = 3
	}
	g := graph.GenRMAT(4096, 4096*12, 101)
	weighted := graph.WithRandomWeights(g, 9)
	s := &PerfSuite{
		Schema:     "flash-bench/v2",
		Graph:      "rmat-4096x12-seed101 (OR analog)",
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		GraphXL:    "rmat-16384x12-seed101 (XL tier)",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Micro:      map[string]MicroStat{},
		Mem:        map[string]MemStat{},
		Recovery:   map[string]RecoveryStat{},
		Resize:     map[string]ResizeStat{},
		Serve:      map[string]ServeStat{},
		Cluster:    map[string]ClusterStat{},
	}
	for _, c := range []struct{ w, t int }{{1, 1}, {4, 1}, {4, 4}} {
		r := MicroSparse(c.w, c.t)
		s.Micro[fmt.Sprintf("edgemap_sparse_w%dt%d", c.w, c.t)] = MicroStat{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		m, err := MeasureStateMemory(c.w, c.t)
		if err != nil {
			return nil, fmt.Errorf("state memory w%dt%d: %w", c.w, c.t, err)
		}
		s.Mem[fmt.Sprintf("state_w%dt%d", c.w, c.t)] = m
	}
	for _, transport := range []string{"mem", "tcp"} {
		r, err := MeasureRecovery(transport)
		if err != nil {
			return nil, fmt.Errorf("recovery %s: %w", transport, err)
		}
		s.Recovery[fmt.Sprintf("bfs_kill_%s_w4", transport)] = r
		rz, err := MeasureResize(transport)
		if err != nil {
			return nil, fmt.Errorf("resize %s: %w", transport, err)
		}
		s.Resize[fmt.Sprintf("bfs_elastic_%s_w2to8to4", transport)] = rz
	}
	// Multi-process cluster mode: the same BFS as one process of w workers
	// vs w separate worker processes, so the isolation overhead (spawn,
	// handshake, cross-address-space control rounds) is a committed number.
	for _, w := range []int{2, 4} {
		cs, err := MeasureCluster(w)
		if err != nil {
			return nil, fmt.Errorf("cluster w%d: %w", w, err)
		}
		s.Cluster[fmt.Sprintf("bfs_cross_w%d", w)] = cs
	}
	// Service throughput: the fixed flashd job mix at serial and concurrent
	// scheduling, so the serving layer's jobs/sec has a committed baseline.
	for _, conc := range []int{1, 4} {
		sv, err := MeasureServe(conc)
		if err != nil {
			return nil, fmt.Errorf("serve c%d: %w", conc, err)
		}
		s.Serve[fmt.Sprintf("mixed_jobs_c%d", conc)] = sv
	}
	for _, a := range fixedAlgos(g, weighted) {
		for _, transport := range []string{"mem", "tcp"} {
			for _, w := range []int{1, 2, 4} {
				for _, th := range []int{1, 2, 4} {
					cell, err := runPerfCell(a, transport, w, th, reps)
					if err != nil {
						return nil, fmt.Errorf("%s: %w", cell.Name, err)
					}
					s.Suite = append(s.Suite, cell)
				}
			}
		}
	}
	// XL tier: ~4× the vertices of the main grid, runnable in the headroom
	// the compact state layout freed. BFS and CC, both transports, w4t4.
	xl := graph.GenRMAT(16384, 16384*12, 101)
	s.VerticesXL = xl.NumVertices()
	s.EdgesXL = xl.NumEdges()
	xlAlgos := []perfAlgo{
		{"bfs-xl", func(o []flash.Option) error { _, err := algo.BFS(xl, 0, o...); return err }},
		{"cc-xl", func(o []flash.Option) error { _, err := algo.CC(xl, o...); return err }},
	}
	for _, a := range xlAlgos {
		for _, transport := range []string{"mem", "tcp"} {
			cell, err := runPerfCell(a, transport, 4, 4, reps)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", cell.Name, err)
			}
			s.Suite = append(s.Suite, cell)
		}
	}
	// XXL tier: an order of magnitude more edges than XL, served from a
	// FLASHBLK file through the bounded block cache instead of resident CSR.
	xxl := GenXXL()
	s.GraphXXL = "rmat-65536x36-seed101 (XXL tier, out-of-core)"
	s.VerticesXXL = xxl.NumVertices()
	s.EdgesXXL = xxl.NumEdges()
	ooc, err := MeasureOOC(xxl, 0, reps)
	if err != nil {
		return nil, fmt.Errorf("ooc: %w", err)
	}
	s.Ooc = ooc
	return s, nil
}

// runPerfCell times one (algo, transport, workers, threads) configuration:
// one discarded warmup run, then reps measured runs. Wall time is the median
// rep; allocation deltas come from runtime.MemStats around the median run's
// position; traffic counters come from the last rep's collector.
func runPerfCell(a perfAlgo, transport string, workers, threads, reps int) (PerfCell, error) {
	cell := PerfCell{
		Name:      fmt.Sprintf("%s/%s/w%dt%d", a.name, transport, workers, threads),
		Algo:      a.name,
		Transport: transport,
		Workers:   workers,
		Threads:   threads,
	}
	baseOpts := []flash.Option{flash.WithWorkers(workers), flash.WithThreads(threads)}
	if transport == "tcp" {
		baseOpts = append(baseOpts, flash.WithTCP())
	}
	if err := a.run(baseOpts); err != nil { // warmup
		return cell, err
	}
	ns := make([]int64, 0, reps)
	allocs := make([]int64, 0, reps)
	bytes := make([]int64, 0, reps)
	var col *metrics.Collector
	for i := 0; i < reps; i++ {
		col = metrics.New()
		opts := append(append([]flash.Option{}, baseOpts...), flash.WithCollector(col))
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := a.run(opts); err != nil {
			return cell, err
		}
		ns = append(ns, time.Since(start).Nanoseconds())
		runtime.ReadMemStats(&after)
		allocs = append(allocs, int64(after.Mallocs-before.Mallocs))
		bytes = append(bytes, int64(after.TotalAlloc-before.TotalAlloc))
	}
	cell.NsPerOp = median(ns)
	cell.AllocsPerOp = median(allocs)
	cell.BytesPerOp = median(bytes)
	cell.Messages = col.Messages
	cell.BytesSent = col.Bytes
	cell.Supersteps = col.Supersteps
	return cell, nil
}

func median(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WritePerfJSON writes the suite as indented JSON.
func WritePerfJSON(path string, s *PerfSuite) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerfJSON loads a committed baseline. A missing file is reported via
// os.IsNotExist so callers (the regress guard) can skip.
func ReadPerfJSON(path string) (*PerfSuite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s PerfSuite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// PrintPerf renders the suite for humans.
func PrintPerf(w io.Writer, s *PerfSuite) {
	fmt.Fprintf(w, "graph %s: %d vertices, %d edges (GOMAXPROCS=%d, reps=%d)\n",
		s.Graph, s.Vertices, s.Edges, s.GoMaxProcs, s.Reps)
	keys := make([]string, 0, len(s.Micro))
	for k := range s.Micro {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := s.Micro[k]
		fmt.Fprintf(w, "%-28s %12d ns/op %10d B/op %8d allocs/op\n",
			k, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	memKeys := make([]string, 0, len(s.Mem))
	for k := range s.Mem {
		memKeys = append(memKeys, k)
	}
	sort.Strings(memKeys)
	for _, k := range memKeys {
		m := s.Mem[k]
		fmt.Fprintf(w, "%-28s %12d B state %8.2f B/vertex %8.1f%% saved vs legacy %d B\n",
			k, m.StateBytes, m.StateBytesPerVertex, m.SavingsPct, m.LegacyBytes)
	}
	recKeys := make([]string, 0, len(s.Recovery))
	for k := range s.Recovery {
		recKeys = append(recKeys, k)
	}
	sort.Strings(recKeys)
	for _, k := range recKeys {
		r := s.Recovery[k]
		fmt.Fprintf(w, "%-28s recover %10.2fms (run %7.1fms vs %7.1fms fault-free) %8d ckpt B %d restarts\n",
			k, float64(r.TimeToRecoverNs)/1e6, float64(r.FaultedNs)/1e6,
			float64(r.FaultFreeNs)/1e6, r.CheckpointBytes, r.Restarts)
	}
	rzKeys := make([]string, 0, len(s.Resize))
	for k := range s.Resize {
		rzKeys = append(rzKeys, k)
	}
	sort.Strings(rzKeys)
	for _, k := range rzKeys {
		r := s.Resize[k]
		fmt.Fprintf(w, "%-28s %d resizes %10.2fms paused %10d B migrated (run %7.1fms vs %7.1fms fixed)\n",
			k, r.Resizes, float64(r.ResizeTimeNs)/1e6, r.MigratedBytes,
			float64(r.ElasticNs)/1e6, float64(r.FixedNs)/1e6)
	}
	svKeys := make([]string, 0, len(s.Serve))
	for k := range s.Serve {
		svKeys = append(svKeys, k)
	}
	sort.Strings(svKeys)
	for _, k := range svKeys {
		sv := s.Serve[k]
		fmt.Fprintf(w, "%-28s %3d jobs @ c%-2d %10.2f jobs/sec (batch %7.1fms, %d graph B + %d shared B once, procs=%d)\n",
			k, sv.Jobs, sv.Concurrency, sv.JobsPerSec,
			float64(sv.ElapsedNs)/1e6, sv.GraphBytes, sv.SharedBytes, sv.GoMaxProcs)
	}
	oocKeys := make([]string, 0, len(s.Ooc))
	for k := range s.Ooc {
		oocKeys = append(oocKeys, k)
	}
	sort.Strings(oocKeys)
	for _, k := range oocKeys {
		o := s.Ooc[k]
		fmt.Fprintf(w, "%-28s %12d ns/op ooc vs %12d inmem  hit %5.1f%% %6d evicts  %8d B/dense-step %8d B/sparse-step  resident %d B vs %d B CSR\n",
			k, o.NsPerOp, o.InMemNsPerOp, o.CacheHitRate*100, o.Evictions,
			o.BytesPerDenseStep, o.BytesPerSparseStep, o.ResidentBytes, o.InMemBytes)
	}
	clKeys := make([]string, 0, len(s.Cluster))
	for k := range s.Cluster {
		clKeys = append(clKeys, k)
	}
	sort.Strings(clKeys)
	for _, k := range clKeys {
		cl := s.Cluster[k]
		fmt.Fprintf(w, "%-28s cross-process %9.1fms vs %9.1fms in-process (w%d, %.2fx, %d restarts)\n",
			k, float64(cl.CrossNs)/1e6, float64(cl.InProcNs)/1e6,
			cl.Workers, float64(cl.CrossNs)/float64(cl.InProcNs), cl.Restarts)
	}
	for _, c := range s.Suite {
		fmt.Fprintf(w, "%-24s %12d ns/op %8d allocs/op %10d B sent %8d msgs %5d steps\n",
			c.Name, c.NsPerOp, c.AllocsPerOp, c.BytesSent, c.Messages, c.Supersteps)
	}
}
