// Package core implements FLASHWARE, the paper's middleware for distributed
// graph processing (§IV): per-worker master–mirror state with
// current/next-state semantics, the dense (pull) and sparse (push) EDGEMAP
// kernels with automatic mode switching, VERTEXMAP, mirror synchronization
// restricted to necessary mirrors or critical steps, and the exchange
// protocol layered on comm.Transport.
//
// The public `flash` package at the module root wraps this engine with the
// paper-shaped API; algorithms should not import core directly.
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"flash/graph"
	"flash/internal/bitset"
	"flash/internal/comm"
	"flash/internal/partition"
	"flash/metrics"
)

// Mode selects the update-propagation kernel for an EdgeMap.
type Mode int

const (
	// Auto picks push or pull per step from frontier density (§III-C).
	Auto Mode = iota
	// Push forces EDGEMAPSPARSE.
	Push
	// Pull forces EDGEMAPDENSE.
	Pull
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Push:
		return "push"
	case Pull:
		return "pull"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the number of simulated workers ("processes"); default 4.
	Workers int
	// Threads is the number of parallel threads per worker; default 1.
	Threads int
	// Transport carries inter-worker frames; default comm.NewMem(Workers).
	Transport comm.Transport
	// UseTCP builds a loopback-TCP transport when Transport is nil.
	UseTCP bool
	// UseHashPlacement selects modulo placement instead of contiguous
	// ranges.
	UseHashPlacement bool
	// Mode forces a propagation mode for all EdgeMaps (default Auto).
	Mode Mode
	// DenseThreshold is Ligra's density denominator: a frontier is dense
	// when |U| + outDegree(U) > |E|/DenseThreshold. Default 20.
	DenseThreshold int
	// FullMirrors replicates every vertex on every worker and broadcasts all
	// master updates. Required by algorithms that communicate beyond the
	// neighborhood (virtual edge sets, arbitrary get), per §IV-C.
	FullMirrors bool
	// DisableNecessaryMirrors broadcasts every sync to all workers even when
	// mirror lists are available (ablation toggle for §IV-C).
	DisableNecessaryMirrors bool
	// BatchBytes, when positive, flushes outgoing buffers eagerly once they
	// exceed this size so transfer overlaps the remaining work (§IV-C,
	// "Overlap communication with computation"). Zero sends only at round
	// end.
	BatchBytes int
	// Collector receives runtime metrics; nil allocates a private one.
	Collector *metrics.Collector

	// DrainTimeout bounds how long a worker waits for a peer's next frame
	// within one exchange round before the superstep fails with
	// comm.ErrPeerStalled (or comm.ErrPeerDead when the liveness layer shows
	// the peer's heartbeats have stopped). 0 selects DefaultDrainTimeout so a
	// stalled or dead peer always converts to an error within a bounded
	// window; negative waits forever (the pre-fault-tolerance behavior).
	DrainTimeout time.Duration
	// HeartbeatEvery is the interval of each worker's background heartbeat
	// control frames, which keep the liveness layer's per-peer clocks fresh
	// so a silent worker death is classified as comm.ErrPeerDead rather than
	// a generic stall. 0 disables heartbeats.
	HeartbeatEvery time.Duration
	// Store receives checkpoint images. Defaults to an in-memory store when
	// checkpointing is enabled; pass a FileStore to survive the loss of
	// in-process worker state. The engine never closes the store.
	Store CheckpointStore
	// CheckpointEvery snapshots all worker state every n successful
	// supersteps at the barrier (consistent by BSP construction) and enables
	// rollback+replay recovery from transport failures. 0 disables
	// checkpointing.
	CheckpointEvery int
	// MaxRecoveries bounds checkpoint rollbacks per engine (default 3 when
	// checkpointing is enabled); the budget stops a persistent fault from
	// looping forever.
	MaxRecoveries int
	// SendRetries is how many times a transient send failure is retried with
	// exponential backoff before the superstep fails (default 4; negative
	// disables retries).
	SendRetries int
	// RetryBackoff is the initial retry backoff, doubling per attempt and
	// capped at 100x (default 500µs).
	RetryBackoff time.Duration
	// FaultPlan, when non-nil, wraps the transport with comm.NewFaulty for
	// deterministic fault injection (chaos testing).
	FaultPlan *comm.FaultPlan
	// ResizePolicy, when non-nil, is consulted after every successful
	// superstep; returning a worker count different from the current one
	// triggers an automatic Engine.Resize at the barrier. Requires a transport
	// that implements comm.Resizer and checkpointing for crash-safe migration.
	ResizePolicy ResizePolicy
	// Shared, when non-nil, supplies the immutable half of the engine — the
	// graph and a cached read-only partition — so concurrent engines over one
	// catalog graph share a single CSR and partition instead of rebuilding
	// them per run. The graph passed to NewEngine must be Shared's graph.
	Shared *SharedGraph
	// BlockGraph selects the out-of-core block edge backend: the engine's base
	// edge set iterates FLASHBLK blocks through a bounded per-worker cache
	// instead of in-memory CSR rows. The graph passed to NewEngine must be
	// BlockGraph.Skeleton() (degrees and offsets resident, adjacency on disk).
	// When Shared wraps a block graph, this field is adopted from it.
	BlockGraph *graph.BlockGraph
	// BlockCacheBytes bounds the total decoded-block cache budget, split
	// evenly across workers. 0 with a BlockGraph selects 25% of the graph's
	// decoded edge bytes (minimum 1 MiB). Ignored without a BlockGraph.
	BlockCacheBytes int64
	// RunStats, when non-nil, receives the engine's final summary (RunResult
	// counters plus the private state footprint) when the engine closes. A
	// serving layer uses it to account each job's mutable state without
	// reaching into engine internals.
	RunStats func(RunStats)
	// Cluster, when non-nil, switches the engine into multi-process SPMD
	// mode: this process computes only Cluster.Resident, peers own the other
	// workers, and Transport must be a cross-process endpoint
	// (comm.ListenTCPCluster) already connected to them. In-process
	// rollback recovery, resize, fault plans, shared graphs and the block
	// backend are unavailable in cluster mode.
	Cluster *ClusterSpec
}

// RunStats is the final summary handed to Config.RunStats when the engine
// closes: the cumulative fault-tolerance counters, the worker count at the
// end of the last run, and StateBytes — the job-private mutable state, which
// is the memory a concurrent job costs on top of the shared graph and
// partition.
type RunStats struct {
	Result     RunResult
	StateBytes uint64
	Workers    int
}

// StepInfo is the per-superstep snapshot handed to a ResizePolicy.
type StepInfo struct {
	// Superstep is the number of supersteps completed so far.
	Superstep int
	// Frontier is the active-vertex count produced by the step just finished.
	Frontier int
	// Workers is the current membership size.
	Workers int
	// Vertices is the graph's vertex count.
	Vertices int
}

// ResizePolicy decides the desired worker count after a superstep. Returning
// 0 (or the current count) keeps the membership unchanged.
type ResizePolicy func(StepInfo) int

// ConfigError reports an invalid Engine configuration value. It is returned
// by NewEngine (and Resize) instead of letting a bad value hang a barrier or
// silently misbehave at runtime.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid config: %s %s", e.Field, e.Reason)
}

// ErrEngineClosed is returned by operations racing or following Engine.Close.
// It is terminal: recovery never retries a run the user tore down.
var ErrEngineClosed = errors.New("core: engine closed")

// DefaultDrainTimeout is the superstep deadline applied when Config leaves
// DrainTimeout zero: generous enough that no healthy exchange ever trips it,
// small enough that a hung peer surfaces as an error instead of a silent
// forever-hang.
const DefaultDrainTimeout = 30 * time.Second

func (c *Config) fillDefaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.CheckpointEvery > 0 && c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.DenseThreshold == 0 {
		c.DenseThreshold = 20
	}
	if c.Collector == nil {
		c.Collector = metrics.New()
	}
	if c.MaxRecoveries == 0 {
		c.MaxRecoveries = 3
	}
	if c.SendRetries == 0 {
		c.SendRetries = 4
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 500 * time.Microsecond
	}
	if c.BlockGraph != nil && c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = int64(c.BlockGraph.EdgeBytes() / 4)
		if c.BlockCacheBytes < 1<<20 {
			c.BlockCacheBytes = 1 << 20
		}
	}
}

func (c *Config) validate() error {
	if c.Workers < 1 {
		return &ConfigError{"Workers", fmt.Sprintf("must be >= 1, got %d", c.Workers)}
	}
	if c.Threads < 1 {
		return &ConfigError{"Threads", fmt.Sprintf("must be >= 1, got %d", c.Threads)}
	}
	if c.Transport != nil && c.Transport.Workers() != c.Workers {
		return &ConfigError{"Transport", fmt.Sprintf("has %d workers, config has %d",
			c.Transport.Workers(), c.Workers)}
	}
	if c.DenseThreshold < 1 {
		return &ConfigError{"DenseThreshold", fmt.Sprintf("must be >= 1, got %d", c.DenseThreshold)}
	}
	if c.BatchBytes < 0 {
		return &ConfigError{"BatchBytes", fmt.Sprintf("must be >= 0, got %d", c.BatchBytes)}
	}
	if c.CheckpointEvery < 0 {
		return &ConfigError{"CheckpointEvery", fmt.Sprintf("must be >= 0, got %d", c.CheckpointEvery)}
	}
	if c.HeartbeatEvery < 0 {
		return &ConfigError{"HeartbeatEvery", fmt.Sprintf("must be >= 0, got %v", c.HeartbeatEvery)}
	}
	if c.BlockCacheBytes < 0 {
		return &ConfigError{"BlockCacheBytes", fmt.Sprintf("must be >= 0, got %d", c.BlockCacheBytes)}
	}
	if cl := c.Cluster; cl != nil {
		if cl.Resident < 0 || cl.Resident >= c.Workers {
			return &ConfigError{"Cluster.Resident", fmt.Sprintf("must be in [0,%d), got %d", c.Workers, cl.Resident)}
		}
		if c.Transport == nil {
			return &ConfigError{"Cluster", "requires an explicit cross-process Transport (comm.ListenTCPCluster)"}
		}
		if cl.ResumeSeq > 0 && cl.Store == nil {
			return &ConfigError{"Cluster.ResumeSeq", "requires Cluster.Store"}
		}
		// These features assume every worker's state lives in this process.
		if c.ResizePolicy != nil {
			return &ConfigError{"ResizePolicy", "unsupported in cluster mode"}
		}
		if c.FaultPlan != nil {
			return &ConfigError{"FaultPlan", "unsupported in cluster mode (faults are injected at the process level)"}
		}
		if c.Shared != nil {
			return &ConfigError{"Shared", "unsupported in cluster mode"}
		}
		if c.BlockGraph != nil {
			return &ConfigError{"BlockGraph", "unsupported in cluster mode"}
		}
	}
	// A heartbeat interval at or beyond the drain deadline makes every living
	// peer look heartbeat-silent, so any stall would be misclassified as a
	// permanent death (ErrPeerDead) and trigger pointless cold restarts.
	if c.HeartbeatEvery > 0 && c.DrainTimeout > 0 && c.HeartbeatEvery >= c.DrainTimeout {
		return &ConfigError{"HeartbeatEvery", fmt.Sprintf(
			"(%v) must be shorter than the drain timeout (%v), or live peers are declared dead",
			c.HeartbeatEvery, c.DrainTimeout)}
	}
	return nil
}

// Vtx is the vertex view passed to user callbacks: the id, the degrees in
// the base graph, and a pointer to the property value the callback may read
// (and, for VertexMap map functions, write).
type Vtx[V any] struct {
	ID    graph.VID
	Deg   uint32 // out-degree in G
	InDeg uint32 // in-degree in G
	Val   *V
}

// Engine is one FLASHWARE instance: a graph partitioned over Workers
// workers, each holding property state for its masters and mirrors.
type Engine[V any] struct {
	g     *graph.Graph
	part  *partition.Partitioned
	place partition.Placement
	tr    comm.Transport
	codec comm.Codec[V]
	cfg   Config
	met   *metrics.Collector

	// partShared marks part as borrowed from Config.Shared's cache: it is
	// read-only and must be forked (privatizePart) before any Rebuild.
	partShared bool

	workers []*worker[V]

	// Lifecycle: opMu guards closed and the in-flight operation count; opCond
	// is signaled when ops drops to zero so a concurrent Close can wait for an
	// in-flight Run/Resize to unwind after the abort broadcast kicks it out of
	// its exchange rounds.
	opMu   sync.Mutex
	opCond *sync.Cond
	closed bool
	ops    int

	// Membership history: placeHist[i] is the placement of membership epoch i
	// and memberEpoch indexes the current one. Subsets are stamped with the
	// epoch they were built under; checkSubset lazily remaps a stale subset's
	// bits through the recorded placement into the current one, so driver-held
	// handles survive a resize. The history only grows (a rollback re-installs
	// the old placement under a fresh epoch), so a stamp is always resolvable.
	placeHist   []partition.Placement
	memberEpoch int

	// Fault-tolerance state (driver-side, single-threaded between steps).
	failed      error           // first unrecovered superstep failure
	store       CheckpointStore // snapshot persistence (cfg.Store)
	ckptSeq     uint64          // sequence number of the last image saved
	hasCkpt     bool            // a restorable image exists in the store
	ckptDrv     any             // driver hook state captured with the image
	ckptHasDrv  bool            // ckptDrv is valid
	replayLog   []replayStep[V] // supersteps since the last checkpoint
	stepsSince  int             // supersteps since the last checkpoint
	recoveries  int             // rollbacks performed so far
	ckptSave    func() any      // driver-state hook: snapshot (e.g. DSU)
	ckptRestore func(any)       // driver-state hook: restore

	// Liveness: per-worker background heartbeaters (HeartbeatEvery > 0).
	hbStop []chan struct{}
	hbDone []chan struct{}

	// Cluster mode (Config.Cluster non-nil): resident is the one worker this
	// process computes (-1 in-process), cstore the durable checkpoint+log
	// store, and ffRecs/ffPos the fast-forward replay cursor armed by a
	// resume (see cluster.go).
	resident int
	cstore   *WorkerStore
	ffRecs   []clusterLogRecord
	ffPos    int
}

// worker is the per-worker state ("process memory").
type worker[V any] struct {
	id   int
	eng  *Engine[V]
	part *partition.Part

	// st is the worker's compact slot layout: local masters at slots
	// [0, MasterCount) (slot == local index), then mirrors sorted by gid.
	// Under FullMirrors every non-master is a mirror, so every vertex is
	// resident and SlotCount == |V|.
	st *partition.SlotTable

	// cur holds the current states (§IV-A) indexed by slot: one entry per
	// resident vertex (local masters and mirrors), O(masters+mirrors)
	// instead of O(|V|).
	cur []V //flash:slot-indexed

	// next holds next states for local masters (by local index == slot),
	// created lazily per superstep; nextSet marks which are populated.
	next    []V //flash:slot-indexed
	nextSet *bitset.Bitset

	// acc holds the sparse-kernel accumulators over the slot space (the
	// push-target universe: every push target is a local master or mirror),
	// reused across steps: one (values, membership) shard per thread, so
	// phase-1 pushes never lock — threads accumulate privately and mergeAcc
	// folds shards 1.. into shard 0 at 64-aligned chunk boundaries. Shard 0
	// is allocated eagerly; shards 1.. materialize on the first parallel
	// phase-1 (ensureAccShards), so dense-mode algorithms never pay for
	// them. With Threads=1 only shard 0 exists and the layout matches the
	// old single-accumulator design.
	acc []accShard[V]

	// pend* accumulate partial updates arriving at this master (by local
	// index) during the sparse exchange.
	pendVal []V //flash:slot-indexed
	pendSet *bitset.Bitset

	// frontier is this worker's copy of the global frontier bitmap used by
	// the dense kernel; fenc is the reused frontier-frame encode scratch.
	frontier *bitset.Bitset
	fenc     []byte

	// outKV are the per-destination KV frame encoders for the current round
	// (pool-backed; frames are recycled by the receiver's drain).
	outKV []comm.KVWriter[V]

	// encKV/encMsgs are the per-(thread, destination) encoders the parallel
	// mirror-sync path shards over; nil when Threads == 1.
	encKV   [][]comm.KVWriter[V]
	encMsgs []int

	// pool is the worker's persistent parfor thread pool (Threads-1 helper
	// goroutines), started lazily on the first multi-chunk parforT and
	// joined at Close. nil until started.
	pool *threadPool

	// bcache is the worker's bounded cache of decoded FLASHBLK blocks; nil
	// without an out-of-core backend. Per-worker so the block-read hot path
	// never contends across workers.
	bcache *graph.BlockCache
	// resOut/resIn are the per-block frontier-residency scratch bitmaps a
	// sparse superstep plans its block reads with (capacity: block count per
	// direction).
	resOut, resIn *bitset.Bitset

	met *metrics.Collector
	ctx Ctx[V]
}

// accShard is one thread's private phase-1 accumulator.
type accShard[V any] struct {
	val []V //flash:slot-indexed
	set *bitset.Bitset
}

// NewEngine partitions g and allocates per-worker state.
func NewEngine[V any](g *graph.Graph, cfg Config) (*Engine[V], error) {
	if cfg.Shared != nil && cfg.BlockGraph == nil {
		// A shared block graph carries the backend with it, so every borrowing
		// engine runs out-of-core without per-job plumbing.
		cfg.BlockGraph = cfg.Shared.Block()
	}
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shared != nil && cfg.Shared.Graph() != g {
		return nil, &ConfigError{"Shared", "wraps a different graph than the one passed to NewEngine"}
	}
	if cfg.BlockGraph != nil && cfg.BlockGraph.Skeleton() != g {
		return nil, &ConfigError{"BlockGraph", "is not the backend of the graph passed to NewEngine (use BlockGraph.Skeleton())"}
	}
	tr := cfg.Transport
	if tr == nil {
		if cfg.UseTCP {
			var err error
			tr, err = comm.NewTCP(cfg.Workers)
			if err != nil {
				return nil, err
			}
		} else {
			tr = comm.NewMem(cfg.Workers)
		}
	}
	if cfg.FaultPlan != nil {
		tr = comm.NewFaulty(tr, *cfg.FaultPlan)
	}
	if cfg.DrainTimeout > 0 {
		tr.SetDrainTimeout(cfg.DrainTimeout)
	}
	var part *partition.Partitioned
	partShared := false
	if cfg.Shared != nil {
		part = cfg.Shared.Partition(cfg.Workers, cfg.UseHashPlacement)
		partShared = true
	} else {
		var place partition.Placement
		if cfg.UseHashPlacement {
			place = partition.NewHash(g.NumVertices(), cfg.Workers)
		} else {
			place = partition.NewRange(g.NumVertices(), cfg.Workers)
		}
		var topo partition.Adjacency = g
		if cfg.BlockGraph != nil {
			// Mirror discovery streams the block file through the sequential
			// MRU instead of touching the (absent) in-memory adjacency.
			topo = cfg.BlockGraph
		}
		part = partition.New(topo, place)
	}
	place := part.Place
	e := &Engine[V]{
		g:          g,
		part:       part,
		partShared: partShared,
		place:      place,
		tr:         tr,
		codec:      comm.CodecFor[V](),
		cfg:        cfg,
		met:        cfg.Collector,
	}
	e.opCond = sync.NewCond(&e.opMu)
	e.placeHist = []partition.Placement{place}
	e.store = cfg.Store
	e.resident = -1
	if cfg.Cluster != nil {
		e.resident = cfg.Cluster.Resident
	}
	e.workers = make([]*worker[V], cfg.Workers)
	for wi := range e.workers {
		e.workers[wi] = e.newWorker(wi)
	}
	if cfg.Cluster != nil {
		if err := e.initCluster(); err != nil {
			return nil, err
		}
	}
	e.startHeartbeaters()
	return e, nil
}

// newWorker allocates worker wi's state from the current partition. It is
// used both at construction and by coldRestart, where the victim's partition
// entry has just been rebuilt: everything a worker holds must be derivable
// from the graph, the placement, and (via restoreCheckpoint) the stored
// image.
func (e *Engine[V]) newWorker(wi int) *worker[V] {
	return e.newWorkerAt(wi, e.part, e.place, e.cfg.Workers)
}

// newWorkerAt is newWorker against an explicit membership (partition,
// placement, worker count), which may not be installed in the engine yet:
// Resize builds the new membership's workers side by side with the old ones
// so a failed migration can simply discard them.
func (e *Engine[V]) newWorkerAt(wi int, part *partition.Partitioned, place partition.Placement, workers int) *worker[V] {
	cfg, n := e.cfg, e.g.NumVertices()
	st := part.Parts[wi].Slots
	if cfg.FullMirrors {
		st = partition.FullSlotTable(place, wi, n)
	}
	if e.resident >= 0 && wi != e.resident {
		// Cluster shell: the worker's state lives in a peer process. Only the
		// shared placement metadata (and a metrics shard, for the merge loop)
		// is kept; every state slice stays nil so any accidental local use
		// fails loudly instead of silently diverging from the real owner.
		w := &worker[V]{id: wi, eng: e, part: part.Parts[wi], st: st, met: metrics.New()}
		w.ctx = Ctx[V]{G: e.g, w: w}
		return w
	}
	w := &worker[V]{
		id:       wi,
		eng:      e,
		part:     part.Parts[wi],
		st:       st,
		cur:      make([]V, st.SlotCount()),
		next:     make([]V, place.LocalCount(wi)),
		nextSet:  bitset.New(place.LocalCount(wi)),
		acc:      make([]accShard[V], cfg.Threads),
		pendVal:  make([]V, place.LocalCount(wi)),
		pendSet:  bitset.New(place.LocalCount(wi)),
		frontier: bitset.New(n),
		outKV:    make([]comm.KVWriter[V], workers),
		met:      metrics.New(),
	}
	// Shard 0 serves the sequential push path and the fold target of
	// mergeAcc; the per-thread shards 1.. are lazy (ensureAccShards).
	w.acc[0] = accShard[V]{val: make([]V, st.SlotCount()), set: bitset.New(st.SlotCount())}
	if bg := cfg.BlockGraph; bg != nil {
		budget := cfg.BlockCacheBytes / int64(workers)
		if budget < 1 {
			budget = 1
		}
		w.bcache = graph.NewBlockCache(bg, budget)
		w.resOut = bitset.New(bg.NumBlocks(graph.BlockOut))
		w.resIn = bitset.New(bg.NumBlocks(graph.BlockIn))
	}
	for to := range w.outKV {
		w.outKV[to].Init(e.codec)
	}
	if cfg.Threads > 1 {
		w.encKV = make([][]comm.KVWriter[V], cfg.Threads)
		w.encMsgs = make([]int, cfg.Threads)
		for t := range w.encKV {
			w.encKV[t] = make([]comm.KVWriter[V], workers)
			for to := range w.encKV[t] {
				w.encKV[t][to].Init(e.codec)
			}
		}
	}
	w.ctx = Ctx[V]{G: e.g, w: w}
	return w
}

// Graph returns the underlying topology.
func (e *Engine[V]) Graph() *graph.Graph { return e.g }

// Workers returns the configured worker count.
func (e *Engine[V]) Workers() int { return e.cfg.Workers }

// Metrics returns the engine's metrics collector.
func (e *Engine[V]) Metrics() *metrics.Collector { return e.met }

// Config returns the engine's effective configuration.
func (e *Engine[V]) Config() Config { return e.cfg }

// ReplicationFactor exposes the partition quality metric.
func (e *Engine[V]) ReplicationFactor() float64 { return e.part.ReplicationFactor() }

// beginOp registers an in-flight Run/Resize; it fails with ErrEngineClosed
// once Close has been called.
func (e *Engine[V]) beginOp() error {
	e.opMu.Lock()
	defer e.opMu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.ops++
	return nil
}

// endOp retires an in-flight operation, waking a Close waiting for quiesce.
func (e *Engine[V]) endOp() {
	e.opMu.Lock()
	e.ops--
	if e.ops == 0 {
		e.opCond.Broadcast()
	}
	e.opMu.Unlock()
}

// isClosed reports whether Close has started.
func (e *Engine[V]) isClosed() bool {
	e.opMu.Lock()
	defer e.opMu.Unlock()
	return e.closed
}

// Close releases the transport and joins the workers' parfor thread pools.
// It is idempotent and safe to call concurrently with an in-flight Run or
// Resize: the first Close marks the engine closed, aborts the transport so
// blocked exchange rounds unwind with ErrEngineClosed (terminal — recovery
// never retries it), waits for in-flight operations to drain, then tears the
// transport down. The engine must not be used afterwards.
func (e *Engine[V]) Close() error {
	e.opMu.Lock()
	if e.closed {
		// A concurrent first Close may still be draining; wait so every
		// returned Close means the teardown finished.
		for e.ops > 0 {
			e.opCond.Wait()
		}
		e.opMu.Unlock()
		return nil
	}
	e.closed = true
	if e.ops > 0 {
		e.tr.Abort(ErrEngineClosed)
		for e.ops > 0 {
			e.opCond.Wait()
		}
	}
	e.opMu.Unlock()
	e.stopHeartbeaters()
	for _, w := range e.workers {
		if w.pool != nil {
			w.pool.stop()
			w.pool = nil
		}
	}
	if e.cfg.RunStats != nil {
		// Ops have drained and pools are stopped, so the cumulative counters
		// and StateBytes are a stable final snapshot of this engine's work.
		e.cfg.RunStats(RunStats{Result: e.runResult(), StateBytes: e.StateBytes(), Workers: e.cfg.Workers})
	}
	return e.tr.Close()
}

// parallelWorkers runs f once per worker concurrently and waits; it then
// folds worker metric shards into the engine collector.
//
// Error propagation: the first worker to fail broadcasts an abort through
// the transport so peers blocked in exchange rounds unblock promptly with
// comm.ErrAborted, and every worker goroutine is always joined before the
// call returns — a failing superstep leaks no goroutines. The returned
// error is the root cause (a non-abort error is preferred over the
// secondary comm.ErrAborted ones it triggered). Panics inside a worker are
// converted to non-recoverable errors so the abort broadcast still runs.
//
//flash:amortized one goroutine spawn per worker per superstep
func (e *Engine[V]) parallelWorkers(f func(w *worker[V]) error) error {
	errs := make([]error, len(e.workers))
	var wg sync.WaitGroup
	for _, w := range e.workers {
		if e.resident >= 0 && w.id != e.resident {
			continue // cluster shell: the peer process runs this worker
		}
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w.id] = &workerPanic{worker: w.id, value: r, stack: debug.Stack()}
					e.tr.Abort(comm.ErrAborted)
				}
			}()
			if err := f(w); err != nil {
				errs[w.id] = err
				// A killed worker dies silently: no abort broadcast, so its
				// peers must detect the loss through the liveness layer
				// (heartbeats + drain deadline), exactly as a real process
				// death would surface.
				var ke *comm.KillError
				if errors.As(err, &ke) && ke.Worker == w.id {
					return
				}
				e.tr.Abort(comm.ErrAborted)
			}
		}()
	}
	wg.Wait()
	for _, w := range e.workers {
		e.met.Merge(w.met)
		w.met.Reset()
	}
	var secondary error
	for wi, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, comm.ErrAborted) {
			return fmt.Errorf("core: worker %d: superstep failed: %w", wi, err)
		}
		if secondary == nil {
			secondary = fmt.Errorf("core: worker %d: superstep aborted: %w", wi, err)
		}
	}
	return secondary
}

// workerPanic wraps a panic that escaped a worker goroutine. It is never
// recovered from a checkpoint: a deterministic callback panic would fire
// again on replay.
type workerPanic struct {
	worker int
	value  any
	stack  []byte
}

func (p *workerPanic) Error() string {
	return fmt.Sprintf("core: worker %d panicked: %v\n%s", p.worker, p.value, p.stack)
}

// send ships one frame with retry: transient failures back off exponentially
// (capped) up to cfg.SendRetries attempts, counting retries — and, after a
// dropped connection heals, reconnects — into the worker's metric shard.
// Payload bytes are counted on the first successful send, so the collector's
// Bytes reflects delivered traffic, not retry amplification.
//
//flash:hotpath
//flash:phase(ship,sync)
func (w *worker[V]) send(to int, data []byte) error {
	e := w.eng
	backoff := e.cfg.RetryBackoff
	sawDrop := false
	for attempt := 0; ; attempt++ {
		err := e.tr.Send(w.id, to, data)
		if err == nil {
			if sawDrop {
				w.met.AddReconnects(1)
			}
			w.met.AddTraffic(0, uint64(len(data)))
			return nil
		}
		if !comm.IsTransient(err) || attempt >= e.cfg.SendRetries {
			return err
		}
		if errors.Is(err, comm.ErrConnDropped) {
			sawDrop = true
		}
		w.met.AddRetries(1)
		time.Sleep(backoff)
		if backoff < 100*e.cfg.RetryBackoff {
			backoff *= 2
		}
	}
}

// threadPool is a worker's persistent set of parfor helper goroutines.
// parforT used to spawn fresh goroutines for every phase of every superstep;
// the pool starts Threads-1 helpers once and reuses them: each parforJob is
// broadcast to the helpers through a buffered channel and the chunks are
// claimed by atomic fetch-add, with the calling goroutine working alongside
// the helpers. Stale job copies left in the channel after all chunks are
// claimed drain as instant no-ops.
type threadPool struct {
	jobs chan *parforJob
}

// parforJob is one parfor invocation: fixed 64-aligned chunking with chunk
// index t == chunk number, so every runner that claims chunk t is the unique
// user of the per-thread scratch keyed by t.
type parforJob struct {
	f       func(t, lo, hi int)
	chunk   int
	total   int
	nchunks int32
	next    atomic.Int32
	wg      sync.WaitGroup
}

// run claims and executes chunks until the job is exhausted.
func (j *parforJob) run() {
	for {
		t := int(j.next.Add(1) - 1)
		if t >= int(j.nchunks) {
			return
		}
		lo := t * j.chunk
		hi := lo + j.chunk
		if hi > j.total {
			hi = j.total
		}
		j.f(t, lo, hi)
		j.wg.Done()
	}
}

func newThreadPool(helpers int) *threadPool {
	// Buffer two broadcasts' worth of job copies so back-to-back parfor
	// phases never block on a helper still draining a finished job.
	p := &threadPool{jobs: make(chan *parforJob, 2*helpers+1)}
	for i := 0; i < helpers; i++ {
		go func() {
			for job := range p.jobs {
				job.run()
			}
		}()
	}
	return p
}

// stop joins the helper goroutines. The pool must be idle.
func (p *threadPool) stop() { close(p.jobs) }

// parfor splits [0, total) into 64-aligned chunks over the worker's threads
// and runs them concurrently. Alignment guarantees concurrent bitset writes
// on disjoint chunks never touch the same word.
//
//flash:amortized one job descriptor per parallel region
func (w *worker[V]) parfor(total int, f func(lo, hi int)) {
	w.parforT(total, func(_, lo, hi int) { f(lo, hi) })
}

// parforT is parfor with a stable chunk index t passed to f, for callers
// keeping per-thread scratch (accumulator shards, encode buffers). The chunk
// size ceil(total/Threads) rounded up to 64 guarantees t < Config.Threads.
// Multi-chunk invocations run on the worker's persistent thread pool; the
// calling goroutine participates, so the pool only needs Threads-1 helpers.
//
//flash:amortized one job descriptor per parallel region
func (w *worker[V]) parforT(total int, f func(t, lo, hi int)) {
	threads := w.eng.cfg.Threads
	if threads == 1 || total < 128 {
		f(0, 0, total)
		return
	}
	chunk := (total + threads - 1) / threads
	chunk = (chunk + 63) &^ 63
	nchunks := (total + chunk - 1) / chunk
	if nchunks == 1 {
		f(0, 0, total)
		return
	}
	if w.pool == nil {
		// Lazy start; races are impossible because a worker's supersteps
		// are serialized (parallelWorkers joins before the next phase).
		w.pool = newThreadPool(threads - 1)
	}
	job := &parforJob{f: f, chunk: chunk, total: total, nchunks: int32(nchunks)}
	job.wg.Add(nchunks)
	for i := 1; i < nchunks; i++ {
		w.pool.jobs <- job
	}
	job.run()
	job.wg.Wait()
}

// publishNext copies the buffered next states of the updated masters into
// cur, parallel over 64-aligned chunks (distinct local indices map to
// distinct masters, so the writes never collide). A master's slot is its
// local index, so no id translation is needed.
//
//flash:hotpath
//flash:phase(sync)
func (w *worker[V]) publishNext(updated *bitset.Bitset) {
	words := updated.Words()
	w.parfor(updated.Cap(), func(lo, hi int) {
		for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
			word := words[wi]
			base := wi << 6
			for word != 0 {
				l := base + bits.TrailingZeros64(word)
				word &= word - 1
				w.cur[l] = w.next[l]
			}
		}
	})
}

// ensureAccShards materializes the per-thread phase-1 accumulator shards
// 1..Threads-1 on first use, so algorithms that never run a parallel sparse
// push never allocate them.
//
//flash:amortized allocates once, on the first parallel sparse push
func (w *worker[V]) ensureAccShards() {
	for t := 1; t < len(w.acc); t++ {
		if w.acc[t].val == nil {
			w.acc[t] = accShard[V]{
				val: make([]V, w.st.SlotCount()),
				set: bitset.New(w.st.SlotCount()),
			}
		}
	}
}

// forEachMember visits the local indices in membership, choosing between a
// thread-parallel full scan (dense frontiers) and a sequential bit-walk
// (sparse frontiers, avoiding the O(localCount) scan).
//
//flash:amortized one parallel region per frontier sweep
func (w *worker[V]) forEachMember(membership *bitset.Bitset, count int, f func(l int)) {
	if count*16 < membership.Cap() || w.eng.cfg.Threads == 1 {
		membership.Range(func(l int) bool {
			f(l)
			return true
		})
		return
	}
	w.parfor(membership.Cap(), func(lo, hi int) {
		for l := lo; l < hi; l++ {
			if membership.Test(l) {
				f(l)
			}
		}
	})
}

// vtx builds the callback view for v using this worker's current states.
// v must be resident (a local master or mirror).
//
//flash:hotpath
//flash:phase(compute)
func (w *worker[V]) vtx(v graph.VID) Vtx[V] {
	return Vtx[V]{
		ID:    v,
		Deg:   uint32(w.eng.g.OutDegree(v)),
		InDeg: uint32(w.eng.g.InDegree(v)),
		Val:   &w.cur[w.st.Slot(v)],
	}
}

// vtxMaster is vtx for a local master whose local index (== slot) is already
// known, skipping the gid→slot lookup on master-walk hot paths.
//
//flash:hotpath
//flash:phase(compute)
func (w *worker[V]) vtxMaster(v graph.VID, l int) Vtx[V] {
	return Vtx[V]{
		ID:    v,
		Deg:   uint32(w.eng.g.OutDegree(v)),
		InDeg: uint32(w.eng.g.InDegree(v)),
		Val:   &w.cur[l],
	}
}

// vtxAt is like vtx but points Val at an explicit working copy.
//
//flash:hotpath
//flash:phase(compute)
func (w *worker[V]) vtxAt(v graph.VID, val *V) Vtx[V] {
	return Vtx[V]{
		ID:    v,
		Deg:   uint32(w.eng.g.OutDegree(v)),
		InDeg: uint32(w.eng.g.InDegree(v)),
		Val:   val,
	}
}

// Ctx gives EdgeSet implementations read access to current states.
type Ctx[V any] struct {
	G *graph.Graph
	w *worker[V]
}

// Get returns a read-only pointer to v's current state as seen by this
// worker. Valid for local masters and mirrors; with FullMirrors every vertex
// is valid.
func (c *Ctx[V]) Get(v graph.VID) *V { return &c.w.cur[c.w.st.Slot(v)] }

// Worker returns the worker id the context belongs to.
func (c *Ctx[V]) Worker() int { return c.w.id }

// timeBlock measures a closure into the worker's metric shard.
//
//flash:hotpath
func (w *worker[V]) timeBlock(cat metrics.Category, f func()) {
	start := time.Now()
	f()
	w.met.Add(cat, time.Since(start))
}

// StateBytes returns the resident per-worker property-state footprint, summed
// over all workers: the slot-indexed current-state arrays, next/pending
// master buffers, every materialized accumulator shard, the per-step bitsets,
// and the slot tables' auxiliary rank/gid structures. Transient frame
// buffers (pool-backed) and the shared topology are excluded. The bench
// suite's state_bytes_per_vertex metric and its regression guard are built
// on this accounting, which is deterministic for a fixed graph and
// configuration — unlike a live-heap sample, it cannot flake with GC timing.
func (e *Engine[V]) StateBytes() uint64 {
	vsz := uint64(unsafe.Sizeof(*new(V)))
	bitsetBytes := func(b *bitset.Bitset) uint64 { return uint64(len(b.Words())) * 8 }
	var total uint64
	for _, w := range e.workers {
		if w.cur == nil {
			continue // cluster shell: no local state
		}
		total += uint64(cap(w.cur)) * vsz
		total += uint64(cap(w.next)) * vsz
		total += uint64(cap(w.pendVal)) * vsz
		for t := range w.acc {
			if w.acc[t].val != nil {
				total += uint64(cap(w.acc[t].val))*vsz + bitsetBytes(w.acc[t].set)
			}
		}
		total += bitsetBytes(w.nextSet) + bitsetBytes(w.pendSet) + bitsetBytes(w.frontier)
		total += w.st.AuxBytes()
	}
	return total
}
