package comm

import (
	"fmt"
	"sync"
	"testing"
)

// runRounds drives `rounds` exchange rounds on tr with `m` worker goroutines.
// In each round every worker sends one frame "r<round>:w<from>" to every
// worker (including itself) and verifies it receives exactly m frames.
func runRounds(t *testing.T, tr Transport, m, rounds int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, m)
	for w := 0; w < m; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for to := 0; to < m; to++ {
					tr.Send(w, to, []byte(fmt.Sprintf("r%d:w%d", r, w)))
				}
				tr.EndRound(w)
				got := map[string]int{}
				tr.Drain(w, func(from int, data []byte) {
					got[string(data)]++
				})
				if len(got) != m {
					errs <- fmt.Errorf("worker %d round %d: got %d distinct frames, want %d (%v)", w, r, len(got), m, got)
					return
				}
				for from := 0; from < m; from++ {
					key := fmt.Sprintf("r%d:w%d", r, from)
					if got[key] != 1 {
						errs <- fmt.Errorf("worker %d round %d: frame %q count %d", w, r, key, got[key])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMemExchange(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5} {
		tr := NewMem(m)
		runRounds(t, tr, m, 4)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemStats(t *testing.T) {
	tr := NewMem(2)
	tr.Send(0, 1, []byte("abcd"))
	tr.EndRound(0)
	tr.EndRound(1)
	tr.Drain(0, func(int, []byte) {})
	got := 0
	tr.Drain(1, func(from int, data []byte) {
		got++
		if from != 0 || string(data) != "abcd" {
			t.Fatalf("frame from=%d data=%q", from, data)
		}
	})
	if got != 1 {
		t.Fatalf("got %d frames", got)
	}
	s := tr.Stats()
	if s.FramesSent != 1 || s.BytesSent != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMemNilDataIsNotEOR(t *testing.T) {
	tr := NewMem(1)
	tr.Send(0, 0, nil)
	tr.EndRound(0)
	n := 0
	tr.Drain(0, func(from int, data []byte) { n++ })
	if n != 1 {
		t.Fatalf("nil-data frame lost: n=%d", n)
	}
}

// TestMemRunAheadInterleaved verifies a fast sender's next-round frames do
// not corrupt a receiver still draining the previous round.
func TestMemRunAheadInterleaved(t *testing.T) {
	tr := NewMem(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < 3; r++ {
			tr.Send(0, 1, []byte{byte('a' + r)})
			tr.EndRound(0)
			tr.Drain(0, func(int, []byte) {})
		}
	}()
	for r := 0; r < 3; r++ {
		var got []byte
		tr.EndRound(1)
		tr.Drain(1, func(from int, data []byte) {
			if from == 0 {
				got = append(got, data...)
			}
		})
		if len(got) != 1 || got[0] != byte('a'+r) {
			t.Fatalf("round %d: got %q", r, got)
		}
	}
	<-done
}

func TestTCPExchange(t *testing.T) {
	for _, m := range []int{1, 2, 4} {
		tr, err := NewTCP(m)
		if err != nil {
			t.Fatal(err)
		}
		runRounds(t, tr, m, 3)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPLargeFrames(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Send(w, 1-w, big)
			tr.EndRound(w)
			tr.Drain(w, func(from int, data []byte) {
				if len(data) != len(big) {
					t.Errorf("worker %d: got %d bytes", w, len(data))
					return
				}
				for i := 0; i < len(big); i += 4099 {
					if data[i] != big[i] {
						t.Errorf("worker %d: corrupt at %d", w, i)
						return
					}
				}
			})
		}()
	}
	wg.Wait()
}

func BenchmarkMemExchange4(b *testing.B) {
	tr := NewMem(4)
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for to := 0; to < 4; to++ {
					tr.Send(w, to, payload)
				}
				tr.EndRound(w)
				tr.Drain(w, func(int, []byte) {})
			}()
		}
		wg.Wait()
	}
}
