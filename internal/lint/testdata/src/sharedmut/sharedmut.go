// Fixture for the sharedmut analyzer: types marked //flash:immutable are
// shared read-only once published (the core.SharedGraph contract), so no
// write may reach them except through the sanctioned escapes — construction
// of fresh memory, a //flash:mutator owner, or a //flash:privatizes fork
// (copy-on-write) earlier in the same body.
package sharedmut

// Part mirrors partition.Part: one worker's published partition view.
//
//flash:immutable
type Part struct {
	Worker        int
	MirrorWorkers [][]int
}

// Partitioned mirrors partition.Partitioned: the shared per-worker bundle.
//
//flash:immutable
type Partitioned struct {
	Parts []*Part
}

// Fork returns a private shallow copy whose Parts slice may be swapped —
// the sanctioned copy-on-write escape.
func (p *Partitioned) Fork() *Partitioned {
	return &Partitioned{Parts: append([]*Part(nil), p.Parts...)}
}

// Rebuild repopulates one worker's part in place; callers must hold a
// private (forked or freshly built) copy.
//
//flash:mutator
func (p *Partitioned) Rebuild(w int) *Part {
	part := &Part{Worker: w}
	p.Parts[w] = part // no diagnostic: the owner is //flash:mutator
	return part
}

type engine struct {
	part   *Partitioned
	shared bool
}

// privatizePart mirrors core's privatizePart: fork before first mutation.
//
//flash:privatizes
func (e *engine) privatizePart() {
	if e.shared {
		e.part = e.part.Fork()
		e.shared = false
	}
}

// The PR 7 bug class: a cold-restart recovery path rebuilding through a
// still-shared partition, clobbering the layout under every other engine
// borrowing the same catalog entry.
func (e *engine) coldRestartUnforked(victim int) {
	e.part.Rebuild(victim) // want `call to //flash:mutator \(\*Partitioned\)\.Rebuild mutates shared //flash:immutable Partitioned`
}

// The fix: privatize (fork) first, then rebuild the private copy.
func (e *engine) coldRestartForked(victim int) {
	e.privatizePart()
	e.part.Rebuild(victim) // no diagnostic: privatized above
}

// Forking inline also sanctions the mutation: the local is fresh memory.
func (e *engine) coldRestartInlineFork(victim int) {
	mine := e.part.Fork()
	mine.Rebuild(victim) // no diagnostic: Fork returns fresh memory
	e.part = mine
}

func (e *engine) clobberMirrors(victim int) {
	e.part.Parts[victim].MirrorWorkers = nil // want `write through //flash:immutable Part after publish`
}

// scrubPart is a mutator taking the shared value as an argument rather than
// a receiver; call sites are checked the same way.
//
//flash:mutator
func scrubPart(p *Part) {
	p.MirrorWorkers = nil
}

func (e *engine) scrubShared(victim int) {
	scrubPart(e.part.Parts[victim]) // want `passing shared //flash:immutable Part to //flash:mutator scrubPart`
}

// Construction-time writes are private until the value is published.
func build(n int) *Partitioned {
	p := &Partitioned{Parts: make([]*Part, n)}
	for w := range p.Parts {
		p.Parts[w] = &Part{Worker: w} // no diagnostic: p is still private
	}
	return p
}

// Reads through shared immutable state are always free.
func readShared(e *engine, victim int) int {
	return e.part.Parts[victim].Worker
}
