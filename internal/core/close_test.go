package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flash/graph"
)

// TestCloseIdempotent: Close twice sequentially; both succeed, and the
// engine rejects further work with ErrEngineClosed.
func TestCloseIdempotent(t *testing.T) {
	e := mustEngine(t, graph.GenPath(32), Config{Workers: 2})
	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Run(func() error { return nil }); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Run after Close: got %v, want ErrEngineClosed", err)
	}
	if err := e.Resize(3); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Resize after Close: got %v, want ErrEngineClosed", err)
	}
}

// TestCloseConcurrent: many racing Close calls; every one returns nil and
// every one returns only after teardown finished.
func TestCloseConcurrent(t *testing.T) {
	e := mustEngine(t, graph.GenPath(32), Config{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestCloseDuringRun: Close while a program is mid-run. The run must unwind
// promptly with ErrEngineClosed (not deadlock in an exchange barrier), and
// Close must not return before the run has drained.
func TestCloseDuringRun(t *testing.T) {
	e := mustEngine(t, graph.GenPath(256), Config{Workers: 2})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(func() error {
			close(started)
			for { // spin supersteps until Close unwinds the step
				e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps {
					return bfsProps{Dis: v.Val.Dis + 1}
				}, StepOpts{})
			}
		})
		done <- err
	}()
	<-started
	time.Sleep(2 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatalf("Close during run: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrEngineClosed) {
			t.Fatalf("interrupted Run returned %v, want ErrEngineClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not unwind after Close")
	}
}

// TestCloseDuringResize: Close racing a loop of membership changes. The
// resize in flight when Close lands must fail with ErrEngineClosed instead
// of deadlocking in the migration round.
func TestCloseDuringResize(t *testing.T) {
	e := mustEngine(t, graph.GenPath(256), Config{Workers: 2})
	done := make(chan error, 1)
	go func() {
		var err error
		for err == nil {
			if err = e.Resize(3); err == nil {
				err = e.Resize(2)
			}
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatalf("Close during resize: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrEngineClosed) {
			t.Fatalf("interrupted Resize returned %v, want ErrEngineClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Resize loop did not unwind after Close")
	}
}
