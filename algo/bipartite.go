package algo

import (
	"flash"
	"flash/graph"
)

type bipProps struct {
	Side int32 // -1 unvisited, 0/1 the two-coloring
	Bad  bool  // an odd cycle touches this vertex
}

// BipartiteResult reports whether the graph is two-colorable and, when it
// is, a valid side assignment (isolated vertices get side 0).
type BipartiteResult struct {
	IsBipartite bool
	Side        []int32
}

// Bipartite tests two-colorability with a parity BFS from every component's
// minimum vertex: conflicting parities along any edge witness an odd cycle.
func Bipartite(g *graph.Graph, opts ...flash.Option) (BipartiteResult, error) {
	e, err := newEngine[bipProps](g, opts)
	if err != nil {
		return BipartiteResult{}, err
	}
	defer e.Close()

	// Build a BFS forest, one tree per component (seeded at the smallest
	// unvisited vertex), assigning alternating sides by level.
	e.VertexMap(e.All(), nil, func(v flash.Vertex[bipProps]) bipProps {
		return bipProps{Side: -1}
	})
	for {
		seed := flash.VID(graph.NoVertex)
		e.Gather(func(v graph.VID, val *bipProps) {
			if val.Side == -1 && seed == flash.VID(graph.NoVertex) {
				seed = v
			}
		})
		if seed == flash.VID(graph.NoVertex) {
			break
		}
		e.Set(seed, bipProps{Side: 0})
		u := e.FromIDs(seed)
		for u.Size() != 0 {
			u = e.EdgeMap(u, e.E(),
				nil,
				func(s, d flash.Vertex[bipProps]) bipProps {
					return bipProps{Side: 1 - s.Val.Side}
				},
				func(d flash.Vertex[bipProps]) bool { return d.Val.Side == -1 },
				func(t, cur bipProps) bipProps { return t })
		}
	}
	// Conflict detection: any edge with equal sides marks both endpoints.
	bad := e.EdgeMap(e.All(), e.E(),
		func(s, d flash.Vertex[bipProps]) bool { return s.Val.Side == d.Val.Side },
		func(s, d flash.Vertex[bipProps]) bipProps {
			nv := *d.Val
			nv.Bad = true
			return nv
		},
		nil,
		func(t, cur bipProps) bipProps {
			cur.Bad = true
			return cur
		},
		flash.NoSync())

	res := BipartiteResult{IsBipartite: bad.Size() == 0, Side: make([]int32, g.NumVertices())}
	e.Gather(func(v graph.VID, val *bipProps) {
		s := val.Side
		if s == -1 {
			s = 0
		}
		res.Side[v] = s
	})
	return res, nil
}

// MultiBFS runs a multi-source BFS: the distance to the nearest source
// (-1 when unreachable). Used for landmark labelings and as the building
// block of the BCC spanning forest.
func MultiBFS(g *graph.Graph, sources []graph.VID, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[bfsProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	e.VertexMap(e.All(), nil, func(v flash.Vertex[bfsProps]) bfsProps {
		return bfsProps{Dis: inf32}
	})
	u := e.FromIDs(sources...)
	for _, s := range sources {
		e.Set(s, bfsProps{Dis: 0})
	}
	for u.Size() != 0 {
		u = e.EdgeMap(u, e.E(),
			nil,
			func(s, d flash.Vertex[bfsProps]) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} },
			func(d flash.Vertex[bfsProps]) bool { return d.Val.Dis == inf32 },
			func(t, cur bfsProps) bfsProps { return t })
	}
	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *bfsProps) {
		if val.Dis == inf32 {
			out[v] = -1
		} else {
			out[v] = val.Dis
		}
	})
	return out, nil
}
