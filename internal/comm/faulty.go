package comm

import (
	"math/rand"
	"sync"
	"time"
)

// FaultPlan scripts deterministic fault injection for a Faulty transport.
// Probabilistic faults draw from per-sender PRNGs seeded with Seed+sender,
// so a plan replays identically for a fixed per-worker send sequence no
// matter how worker goroutines interleave. Scripted events (Drops, Stalls,
// Crashes) are one-shot: once fired they are consumed, which is what makes
// faults *transient* — a retry or a checkpoint replay runs fault-free.
type FaultPlan struct {
	// Seed seeds the per-sender PRNGs for probabilistic faults.
	Seed int64
	// SendFailProb is the per-frame probability of a transient send failure
	// on cross-worker frames (the frame is not delivered; the caller should
	// retry).
	SendFailProb float64
	// MaxSendFails caps the total number of injected probabilistic send
	// failures (0 = unlimited).
	MaxSendFails int
	// DelayProb is the per-frame probability that a cross-worker frame is
	// held back and delivered at the sender's EndRound instead — delaying it
	// to the end of the round without violating BSP round boundaries.
	DelayProb float64
	// Reorder shuffles the delivery order of held-back frames within each
	// (sender, round) batch. BSP rounds are order-insensitive across a round,
	// so a correct engine must tolerate this.
	Reorder bool
	// Drops injects transient connection drops: sends on the given edge fail
	// with ErrConnDropped until Count failures have been served.
	Drops []ConnDrop
	// Stalls makes a worker sleep inside EndRound of the given round,
	// exercising peers' drain-timeout stall detection.
	Stalls []WorkerStall
	// Crashes makes a worker's EndRound (or Send) of the given round fail
	// with CrashError, simulating a mid-superstep worker failure.
	Crashes []WorkerCrash
}

// ConnDrop scripts a transient drop of the From→To direction starting at the
// sender's round Round; the next Count sends fail (Count 0 means 1).
type ConnDrop struct {
	From, To int
	Round    uint32
	Count    int
}

// WorkerStall scripts worker Worker sleeping Delay inside EndRound of round
// Round.
type WorkerStall struct {
	Worker int
	Round  uint32
	Delay  time.Duration
}

// WorkerCrash scripts worker Worker failing at round Round.
type WorkerCrash struct {
	Worker int
	Round  uint32
}

// FaultCounts reports how many faults a Faulty transport has injected.
type FaultCounts struct {
	SendFails int
	Delays    int
	Drops     int
	Stalls    int
	Crashes   int
}

// Faulty wraps any Transport and injects the faults of a FaultPlan. It is
// the runtime's test double for a lossy, laggy, crashy wire: every
// robustness behavior (retry, stall detection, checkpoint recovery) can be
// exercised deterministically in-process.
type Faulty struct {
	inner Transport
	plan  FaultPlan

	mu      sync.Mutex
	rng     []*rand.Rand
	round   []uint32      // per-sender round counter, mirrors inner's rounds
	held    [][]heldFrame // per-sender frames delayed to EndRound
	drops   []ConnDrop
	stalls  []WorkerStall
	crashes []WorkerCrash
	counts  FaultCounts
}

// heldFrame is a delayed frame awaiting delivery at its sender's EndRound.
type heldFrame struct {
	to   int
	data []byte
}

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Transport, plan FaultPlan) *Faulty {
	m := inner.Workers()
	f := &Faulty{
		inner: inner,
		plan:  plan,
		rng:   make([]*rand.Rand, m),
		round: make([]uint32, m),
		held:  make([][]heldFrame, m),
	}
	for i := range f.rng {
		f.rng[i] = rand.New(rand.NewSource(plan.Seed + int64(i)))
	}
	f.drops = append([]ConnDrop(nil), plan.Drops...)
	for i := range f.drops {
		if f.drops[i].Count == 0 {
			f.drops[i].Count = 1
		}
	}
	f.stalls = append([]WorkerStall(nil), plan.Stalls...)
	f.crashes = append([]WorkerCrash(nil), plan.Crashes...)
	return f
}

// Counts returns the faults injected so far.
func (f *Faulty) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

func (f *Faulty) Workers() int { return f.inner.Workers() }

// crashLocked consumes a pending crash for (from, round) if one is scripted.
func (f *Faulty) crashLocked(from int, r uint32) error {
	for i, c := range f.crashes {
		if c.Worker == from && c.Round == r {
			f.crashes = append(f.crashes[:i], f.crashes[i+1:]...)
			f.counts.Crashes++
			return &CrashError{Worker: from}
		}
	}
	return nil
}

func (f *Faulty) Send(from, to int, data []byte) error {
	if from == to {
		return f.inner.Send(from, to, data)
	}
	f.mu.Lock()
	r := f.round[from]
	if err := f.crashLocked(from, r); err != nil {
		f.mu.Unlock()
		return err
	}
	for i := range f.drops {
		d := &f.drops[i]
		if d.From == from && d.To == to && r >= d.Round && d.Count > 0 {
			d.Count--
			f.counts.Drops++
			f.mu.Unlock()
			return Transient(ErrConnDropped)
		}
	}
	rng := f.rng[from]
	if p := f.plan.SendFailProb; p > 0 && rng.Float64() < p &&
		(f.plan.MaxSendFails == 0 || f.counts.SendFails < f.plan.MaxSendFails) {
		f.counts.SendFails++
		f.mu.Unlock()
		return Transient(ErrConnDropped)
	}
	if p := f.plan.DelayProb; p > 0 && rng.Float64() < p {
		f.counts.Delays++
		f.held[from] = append(f.held[from], heldFrame{to: to, data: data})
		f.mu.Unlock()
		return nil // delivered at EndRound
	}
	f.mu.Unlock()
	return f.inner.Send(from, to, data)
}

func (f *Faulty) EndRound(from int) error {
	f.mu.Lock()
	r := f.round[from]
	if err := f.crashLocked(from, r); err != nil {
		f.mu.Unlock()
		return err
	}
	held := f.held[from]
	f.held[from] = nil
	if f.plan.Reorder && len(held) > 1 {
		f.rng[from].Shuffle(len(held), func(i, j int) { held[i], held[j] = held[j], held[i] })
	}
	var stall time.Duration
	for i, s := range f.stalls {
		if s.Worker == from && s.Round == r {
			stall = s.Delay
			f.stalls = append(f.stalls[:i], f.stalls[i+1:]...)
			f.counts.Stalls++
			break
		}
	}
	f.round[from] = r + 1
	f.mu.Unlock()

	if stall > 0 {
		time.Sleep(stall)
	}
	// Flush held frames before the marker so the round stays complete.
	for _, h := range held {
		if err := f.inner.Send(from, h.to, h.data); err != nil {
			return err
		}
	}
	return f.inner.EndRound(from)
}

func (f *Faulty) Drain(to int, h func(from int, data []byte)) error {
	return f.inner.Drain(to, h)
}

func (f *Faulty) Abort(err error) { f.inner.Abort(err) }

func (f *Faulty) Reset() {
	f.mu.Lock()
	for i := range f.round {
		f.round[i] = 0
		f.held[i] = nil
	}
	// Scripted events stay consumed and PRNG state advances monotonically:
	// a post-recovery replay must not re-fire the fault that triggered it.
	f.mu.Unlock()
	f.inner.Reset()
}

func (f *Faulty) SetDrainTimeout(d time.Duration) { f.inner.SetDrainTimeout(d) }

func (f *Faulty) Stats() Stats { return f.inner.Stats() }

func (f *Faulty) Close() error { return f.inner.Close() }
