package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"flash"
)

// Golden service equivalence: every algorithm served by flashd must return
// results byte-identical (as canonical JSON) to calling the algo package
// directly at the same engine configuration — through the in-process submit
// path and through real HTTP, on both the in-memory and TCP transports. The
// direct baseline reuses the registry adapters, so sentinel transforms
// (sssp's +Inf→-1) apply to both sides.

type equivCase struct {
	name   string
	graph  string
	algo   string
	params JobParams
}

func equivGraphSpecs() []GraphSpec {
	return []GraphSpec{
		{Name: "er", Gen: "er", N: 48, M: 180, Seed: 5},
		{Name: "wer", Gen: "er", N: 48, M: 180, Seed: 5, Weighted: true},
		{Name: "dir", Gen: "randdir", N: 40, M: 140, Seed: 7},
	}
}

func equivCases() []equivCase {
	root := uint64(0)
	iters := 10
	eps := 0.0
	lpaIters := 5
	return []equivCase{
		{"bfs", "er", "bfs", JobParams{Root: &root}},
		{"cc", "er", "cc", JobParams{}},
		{"ccopt", "er", "ccopt", JobParams{}},
		{"pagerank", "er", "pagerank", JobParams{MaxIters: &iters, Eps: &eps}},
		{"sssp", "wer", "sssp", JobParams{Root: &root}},
		{"kcore", "er", "kcore", JobParams{}},
		{"gc", "er", "gc", JobParams{}},
		{"mis", "er", "mis", JobParams{}},
		{"lpa", "er", "lpa", JobParams{MaxIters: &lpaIters}},
		{"tc", "er", "tc", JobParams{}},
		{"scc", "dir", "scc", JobParams{}},
	}
}

// directJSON runs the registry adapter against a privately built copy of the
// catalog graph at the same engine configuration and marshals the result.
func directJSON(t *testing.T, specs []GraphSpec, c equivCase, workers int, tcp bool) []byte {
	t.Helper()
	var spec *GraphSpec
	for i := range specs {
		if specs[i].Name == c.graph {
			spec = &specs[i]
		}
	}
	g, err := BuildGraph(*spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := []flash.Option{flash.WithWorkers(workers), flash.WithThreads(1)}
	if tcp {
		opts = append(opts, flash.WithTCP())
	}
	val, err := algoRegistry[c.algo].run(g, c.params, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(val)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func equivServer(t *testing.T, workers int) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Scheduler: SchedulerConfig{MaxConcurrent: 2, Workers: workers, Threads: 1},
		Preload:   equivGraphSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestServiceEquivalenceInProcess(t *testing.T) {
	const workers = 2
	srv := equivServer(t, workers)
	for _, c := range equivCases() {
		for _, tcp := range []bool{false, true} {
			name := fmt.Sprintf("%s/mem", c.name)
			if tcp {
				name = fmt.Sprintf("%s/tcp", c.name)
			}
			t.Run(name, func(t *testing.T) {
				req := &JobRequest{Graph: c.graph, Algo: c.algo, Params: c.params}
				if tcp {
					v := true
					req.Params.TCP = &v
				}
				job, err := srv.SubmitRequest(req)
				if err != nil {
					t.Fatal(err)
				}
				<-job.Done()
				res, err := job.Result()
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(res.Values)
				if err != nil {
					t.Fatal(err)
				}
				want := directJSON(t, equivGraphSpecs(), c, workers, tcp)
				if !bytes.Equal(got, want) {
					t.Fatalf("service result differs from direct run\nservice: %.200s\ndirect:  %.200s", got, want)
				}
				if res.StateBytes == 0 {
					t.Fatal("job reports zero StateBytes")
				}
				if res.Supersteps == 0 {
					t.Fatal("job reports zero supersteps")
				}
			})
		}
	}
}

func TestServiceEquivalenceHTTP(t *testing.T) {
	const workers = 2
	srv := equivServer(t, workers)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	for _, c := range equivCases() {
		for _, tcp := range []bool{false, true} {
			name := fmt.Sprintf("%s/mem", c.name)
			if tcp {
				name = fmt.Sprintf("%s/tcp", c.name)
			}
			t.Run(name, func(t *testing.T) {
				params := c.params
				if tcp {
					v := true
					params.TCP = &v
				}
				body, err := json.Marshal(JobRequest{Graph: c.graph, Algo: c.algo, Params: params})
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				accepted, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("submit: %d %s", resp.StatusCode, accepted)
				}
				var sub struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(accepted, &sub); err != nil {
					t.Fatal(err)
				}
				resp, err = http.Get(hs.URL + "/v1/jobs/" + sub.ID + "?wait=60s")
				if err != nil {
					t.Fatal(err)
				}
				statusBody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var status struct {
					State  JobState `json:"state"`
					Result *struct {
						Values json.RawMessage `json:"values"`
					} `json:"result"`
				}
				if err := json.Unmarshal(statusBody, &status); err != nil {
					t.Fatal(err)
				}
				if status.State != JobDone || status.Result == nil {
					t.Fatalf("job state %q (%s)", status.State, statusBody)
				}
				want := directJSON(t, equivGraphSpecs(), c, workers, tcp)
				got := bytes.TrimSpace(status.Result.Values)
				if !bytes.Equal(got, want) {
					t.Fatalf("HTTP result differs from direct run\nservice: %.200s\ndirect:  %.200s", got, want)
				}
			})
		}
	}
}
