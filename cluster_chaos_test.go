// Cluster chaos soak: real `flashd worker` OS processes in a TCP mesh,
// supervised by a cluster.Coordinator, with SIGKILL-, SIGSTOP- and
// partition-grade faults injected mid-run. The acceptance bar is strict:
// after kill + respawn + resume-from-durable-store, the job's JSON result
// must be byte-identical to an in-process fault-free run of the same
// algorithm at the same worker count.
package flash_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"flash"
	"flash/internal/cluster"
	"flash/internal/serve"
)

var (
	flashdOnce sync.Once
	flashdBin  string
	flashdErr  error
)

// buildFlashd builds the flashd binary once per test process. The chaos
// tests need a real subprocess: an in-process goroutine cannot be SIGKILLed.
func buildFlashd(t *testing.T) string {
	t.Helper()
	flashdOnce.Do(func() {
		dir, err := os.MkdirTemp("", "flashd-chaos-")
		if err != nil {
			flashdErr = err
			return
		}
		flashdBin = filepath.Join(dir, "flashd")
		out, err := exec.Command("go", "build", "-o", flashdBin, "flash/cmd/flashd").CombinedOutput()
		if err != nil {
			flashdErr = fmt.Errorf("build flashd: %v\n%s", err, out)
		}
	})
	if flashdErr != nil {
		t.Fatal(flashdErr)
	}
	return flashdBin
}

// clusterChaosCase is one (algorithm, fault) cell of the chaos matrix.
type clusterChaosCase struct {
	algo   string
	params serve.JobParams
	fault  cluster.FaultKind
}

// clusterChaosGraph is a path graph: BFS, CC and SSSP need ~N supersteps to
// converge on it, so the run is long enough that a fault triggered by the
// victim's second checkpoint is guaranteed to land mid-run, not after the
// finish line.
func clusterChaosGraph() serve.GraphSpec {
	return serve.GraphSpec{Name: "chaos-path", Gen: "path", N: 400, Seed: 23}
}

func intp(v int) *int           { return &v }
func uintp(v uint64) *uint64    { return &v }
func floatp(v float64) *float64 { return &v }

// goldenRun executes the same job in-process, fault-free, on the same
// worker count — the byte-identity reference.
func goldenRun(t *testing.T, spec serve.GraphSpec, algo string, p serve.JobParams, workers int) []byte {
	t.Helper()
	g, err := serve.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := serve.RunAlgo(algo, g, p, flash.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestClusterChaosMatrix is the PR's acceptance test: for each cluster-safe
// algorithm, a two-process fleet is hit mid-run with a process-grade fault —
// SIGKILL for every algorithm, plus SIGSTOP and a network partition on BFS —
// and the completed job's result must equal the in-process golden bytes.
// PageRank uses a fixed iteration budget with eps 0, so the float pipeline is
// deterministic and byte-comparable across process boundaries and resumes.
func TestClusterChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	bin := buildFlashd(t)
	spec := clusterChaosGraph()
	iters := serve.JobParams{MaxIters: intp(25), Eps: floatp(0)}
	cases := []clusterChaosCase{
		{"bfs", serve.JobParams{Root: uintp(0)}, cluster.FaultKill},
		{"cc", serve.JobParams{}, cluster.FaultKill},
		{"pagerank", iters, cluster.FaultKill},
		{"sssp", serve.JobParams{Root: uintp(0)}, cluster.FaultKill},
		{"bfs", serve.JobParams{Root: uintp(0)}, cluster.FaultStall},
		{"bfs", serve.JobParams{Root: uintp(0)}, cluster.FaultPartition},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_%s", tc.algo, tc.fault), func(t *testing.T) {
			gspec := spec
			if tc.algo == "sssp" {
				gspec.Weighted = true
			}
			const workers = 2
			want := goldenRun(t, gspec, tc.algo, tc.params, workers)
			c, err := cluster.New(cluster.Config{
				BinPath: bin, Workers: workers, Graph: gspec, Algo: tc.algo, Params: tc.params,
				StoreDir: t.TempDir(), CheckpointEvery: 2, MaxRestarts: 4,
				Chaos: &cluster.ChaosPlan{Worker: 1, Kind: tc.fault, AwaitSeq: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Run()
			if err != nil {
				t.Fatalf("cluster run under %s: %v", tc.fault, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s under %s: cluster result differs from in-process golden\n got %.160s\nwant %.160s",
					tc.algo, tc.fault, got, want)
			}
			if tc.fault != cluster.FaultPartition && c.Restarts() < 1 {
				// Kill and stall must actually have landed mid-run; a
				// partition may heal by redial without a restart.
				t.Fatalf("%s fault caused %d restarts, want >= 1", tc.fault, c.Restarts())
			}
		})
	}
}

// TestClusterScaleFour runs a fault-free four-process fleet to pin the mesh
// and the replicated-driver determinism above the minimal pair.
func TestClusterScaleFour(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	bin := buildFlashd(t)
	spec := clusterChaosGraph()
	params := serve.JobParams{Root: uintp(0)}
	want := goldenRun(t, spec, "bfs", params, 4)
	c, err := cluster.New(cluster.Config{
		BinPath: bin, Workers: 4, Graph: spec, Algo: "bfs", Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("w4 cluster result differs from in-process golden")
	}
}
